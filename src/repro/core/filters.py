"""The four conflict filters of Section 3.

With the conflict bit stored per cache line, a direct-mapped cache gives
four ways to ask "is this miss event a conflict event?" about the pair
(new missing line, line it evicts):

* ``IN_CONFLICT``   — the *evicted* line originally came in as a conflict
  miss (reads the evicted line's conflict bit; requires the per-line bits).
* ``OUT_CONFLICT``  — the evicted line is being forced out *by* a conflict
  miss (reads only the new miss's MCT classification; needs no extra bits —
  this is why the paper defaults to it when results are similar).
* ``AND_CONFLICT``  — both of the above.
* ``OR_CONFLICT``   — either of the above (the most liberal identification
  of conflict misses).

Applications use the filters in two polarities: victim-style mechanisms
*select* conflict events, prefetch-style mechanisms *suppress* them.  Both
call :meth:`ConflictFilter.matches`; the caller chooses what to do with the
boolean.
"""

from __future__ import annotations

from enum import Enum


class ConflictFilter(Enum):
    """Filter algebra over (new-miss classification, evicted conflict bit)."""

    IN_CONFLICT = "in-conflict"
    OUT_CONFLICT = "out-conflict"
    AND_CONFLICT = "and-conflict"
    OR_CONFLICT = "or-conflict"

    def matches(self, *, new_is_conflict: bool, evicted_conflict_bit: bool) -> bool:
        """True when this filter labels the miss event a conflict event.

        Parameters
        ----------
        new_is_conflict:
            The MCT classification of the incoming miss.
        evicted_conflict_bit:
            The conflict bit of the line being displaced; pass False when
            the fill landed in an empty way (nothing was evicted, so no
            line "came in as a conflict miss").
        """
        if self is ConflictFilter.IN_CONFLICT:
            return evicted_conflict_bit
        if self is ConflictFilter.OUT_CONFLICT:
            return new_is_conflict
        if self is ConflictFilter.AND_CONFLICT:
            return new_is_conflict and evicted_conflict_bit
        return new_is_conflict or evicted_conflict_bit

    @property
    def needs_conflict_bits(self) -> bool:
        """Whether the filter reads the per-line conflict bit.

        OUT_CONFLICT is the only filter implementable without the extra
        bit per cache line (Section 3: "we present the out-conflict
        result, which does not require the extra bits").
        """
        return self is not ConflictFilter.OUT_CONFLICT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The paper's default when policies behave similarly (no per-line bits).
DEFAULT_FILTER = ConflictFilter.OUT_CONFLICT

#: The most liberal filter — used by the victim-cache policies of §5.1.
MOST_LIBERAL_FILTER = ConflictFilter.OR_CONFLICT

ALL_FILTERS = (
    ConflictFilter.IN_CONFLICT,
    ConflictFilter.OUT_CONFLICT,
    ConflictFilter.AND_CONFLICT,
    ConflictFilter.OR_CONFLICT,
)


def parse_filter(name: str) -> ConflictFilter:
    """Look a filter up by its paper name (``"or-conflict"`` etc.)."""
    for f in ConflictFilter:
        if f.value == name:
            return f
    raise ValueError(
        f"unknown conflict filter {name!r}; expected one of "
        f"{[f.value for f in ConflictFilter]}"
    )
