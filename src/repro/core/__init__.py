"""The paper's contribution: miss classification via the MCT."""

from repro.core.accuracy import AccuracyResult, measure_accuracy, sweep_tag_bits
from repro.core.classification import ClassifiedMiss, MissClass
from repro.core.filters import (
    ALL_FILTERS,
    DEFAULT_FILTER,
    MOST_LIBERAL_FILTER,
    ConflictFilter,
    parse_filter,
)
from repro.core.ground_truth import GroundTruthClassifier
from repro.core.mct import MissClassificationTable

__all__ = [
    "ALL_FILTERS",
    "AccuracyResult",
    "ClassifiedMiss",
    "ConflictFilter",
    "DEFAULT_FILTER",
    "GroundTruthClassifier",
    "MOST_LIBERAL_FILTER",
    "MissClass",
    "MissClassificationTable",
    "measure_accuracy",
    "parse_filter",
    "sweep_tag_bits",
]
