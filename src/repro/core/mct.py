"""The Miss Classification Table — the paper's central mechanism.

The MCT has **one entry per cache set** (direct-mapped regardless of the
cache's associativity).  Each entry stores all or part of the tag of the
line most recently evicted from that set.  On a cache miss, the missing
address's tag is compared with the stored tag; a match identifies the miss
as a **conflict miss** — the line was recently here and was pushed out by a
set conflict, so a slightly more associative cache would have kept it.

Two knobs shape the classification (Section 3):

* **Partial tags** (``tag_bits``): storing only the low ``k`` bits of the
  evicted tag shrinks the table at the cost of false conflict matches.
  Figure 2 shows ~8-10 bits retains nearly full accuracy; fewer bits bias
  the classifier toward conflict, which some applications exploit.
* **Update policy**: by default only evictions update the table.  The
  cache-exclusion application additionally *installs* the tags of bypassed
  lines (:meth:`MissClassificationTable.install`) so lines living in the
  bypass buffer can later be recognised as conflict misses (§5.3).

The table is accessed only on cache misses and sits off the critical path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.line import EvictedLine
from repro.core.classification import MissClass


class MissClassificationTable:
    """Per-set evicted-tag store with optional partial tags.

    Parameters
    ----------
    geometry:
        Geometry of the cache this MCT serves (supplies num_sets and the
        tag extraction).
    tag_bits:
        How many low-order tag bits to store and compare.  ``None`` (the
        default, used by all of Section 5) stores the complete tag.

    Examples
    --------
    >>> from repro.cache.geometry import CacheGeometry
    >>> g = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
    >>> mct = MissClassificationTable(g)
    >>> a, b = 0x10000, 0x20000          # same set, different tags
    >>> mct.classify(a) is MissClass.CAPACITY
    True
    >>> mct.record_eviction(g.set_index(a), g.tag(a))
    >>> mct.classify(a) is MissClass.CONFLICT
    True
    >>> mct.classify(b) is MissClass.CAPACITY
    True
    """

    def __init__(
        self, geometry: CacheGeometry, tag_bits: Optional[int] = None
    ) -> None:
        if tag_bits is not None and tag_bits < 1:
            raise ValueError(f"tag_bits must be >= 1 or None, got {tag_bits}")
        self.geometry = geometry
        self.tag_bits = tag_bits
        self._mask = None if tag_bits is None else (1 << tag_bits) - 1
        self._entries: List[Optional[int]] = [None] * geometry.num_sets
        self.classifications = 0
        self.conflict_hits = 0

    # ------------------------------------------------------------------
    # The two hardware operations
    # ------------------------------------------------------------------
    def classify(self, addr: int) -> MissClass:
        """Classify a miss to ``addr`` (compare against the stored tag).

        Call this *before* the miss's own fill updates the table.  The MCT
        can only answer CONFLICT or CAPACITY; compulsory misses fail the
        match and come out as CAPACITY, matching the paper's grouping.
        """
        self.classifications += 1
        stored = self._entries[self.geometry.set_index(addr)]
        if stored is not None and stored == self._store(self.geometry.tag(addr)):
            self.conflict_hits += 1
            return MissClass.CONFLICT
        return MissClass.CAPACITY

    def record_eviction(self, set_index: int, tag: int) -> None:
        """Remember the tag of the line just evicted from ``set_index``.

        Overwrites the previous entry — the table keeps only the *most
        recently* evicted tag per set.
        """
        self._entries[set_index] = self._store(tag)

    # ------------------------------------------------------------------
    # Convenience wiring
    # ------------------------------------------------------------------
    def on_evict(self, set_index: int, evicted: EvictedLine) -> None:
        """Adapter matching :class:`SetAssociativeCache`'s eviction hook."""
        self.record_eviction(set_index, evicted.tag)

    def install(self, addr: int) -> None:
        """Install ``addr``'s tag as if it had just been evicted.

        Used by cache exclusion (§5.3): a line routed into the bypass
        buffer never enters the cache, so it could never later match as a
        conflict miss.  Installing its tag at the set it *would* have
        occupied restores that opportunity.
        """
        self.record_eviction(self.geometry.set_index(addr), self.geometry.tag(addr))

    def classify_is_conflict(self, addr: int) -> bool:
        """Shorthand: ``classify(addr).is_conflict``."""
        return self.classify(addr).is_conflict

    def peek(self, set_index: int) -> Optional[int]:
        """The stored (possibly truncated) tag for a set, or None."""
        return self._entries[set_index]

    def clear(self) -> None:
        """Invalidate every entry (cold MCT)."""
        self._entries = [None] * self.geometry.num_sets

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def storage_bits(self, *, valid_bit: bool = True) -> int:
        """Total MCT storage in bits.

        With 10-bit entries and a 64KB direct-mapped cache (1024 sets) this
        is 1.25KB, the figure quoted in Section 3.  ``valid_bit`` adds one
        bit per entry when the stored-tag width alone cannot encode
        emptiness; the paper's 1.25KB figure counts tag bits only, so pass
        ``valid_bit=False`` to reproduce it exactly.
        """
        if self.tag_bits is None:
            # Assume a 44-bit physical address (Alpha 21264-class), minus
            # offset and index bits.
            width = max(
                44 - self.geometry.offset_bits - self.geometry.index_bits, 1
            )
        else:
            width = self.tag_bits
        if valid_bit:
            width += 1
        return width * self.geometry.num_sets

    def _store(self, tag: int) -> int:
        return tag if self._mask is None else tag & self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = "full" if self.tag_bits is None else f"{self.tag_bits}-bit"
        return (
            f"<MissClassificationTable {self.geometry.num_sets} sets, "
            f"{bits} tags>"
        )
