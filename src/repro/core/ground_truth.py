"""Ground-truth miss classification (the classic Hill definition).

Figures 1 and 2 of the paper report the MCT's *accuracy*, which requires an
oracle that knows each miss's true class.  Following Hill's taxonomy:

* a miss to a never-before-referenced block is **compulsory**;
* a miss that would have *hit* in a fully-associative LRU cache of the same
  total capacity is a **conflict** miss (only the mapping, not the
  capacity, is to blame);
* the remaining misses are **capacity** misses.

The oracle therefore runs a fully-associative LRU model of the target cache
in parallel with the real cache.  The FA model observes *every* access (its
LRU ordering must reflect the full reference stream), while classification
questions are asked only for real-cache misses.

Call order per reference: decide hit/miss in the real cache, then (on a
miss) call :meth:`classify_miss`, then always call :meth:`observe`.
"""

from __future__ import annotations

from repro.cache.fully_assoc import FullyAssociativeLRU
from repro.cache.geometry import CacheGeometry
from repro.core.classification import MissClass


class GroundTruthClassifier:
    """Oracle conflict/capacity/compulsory classification for one cache."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._fa = FullyAssociativeLRU(capacity=geometry.num_lines)
        self._seen: set[int] = set()
        self.compulsory = 0
        self.conflict = 0
        self.capacity = 0

    def classify_miss(self, addr: int) -> MissClass:
        """Classify a real-cache miss to ``addr``.

        Must be called *before* :meth:`observe` for the same reference,
        otherwise the FA model would already contain the block and every
        miss would look like a conflict.
        """
        block = self.geometry.block_number(addr)
        if block not in self._seen:
            self.compulsory += 1
            return MissClass.COMPULSORY
        if self._fa.probe(block):
            self.conflict += 1
            return MissClass.CONFLICT
        self.capacity += 1
        return MissClass.CAPACITY

    def observe(self, addr: int) -> None:
        """Feed one reference (hit or miss) to the FA model."""
        block = self.geometry.block_number(addr)
        self._seen.add(block)
        self._fa.access(block)

    @property
    def total_classified(self) -> int:
        return self.compulsory + self.conflict + self.capacity

    def miss_breakdown(self) -> dict[str, int]:
        """Counts per class, for reports."""
        return {
            "compulsory": self.compulsory,
            "conflict": self.conflict,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GroundTruthClassifier {self.geometry.describe()}: "
            f"{self.conflict} conflict / {self.capacity} capacity / "
            f"{self.compulsory} compulsory>"
        )
