"""Miss classification vocabulary.

The paper distinguishes **conflict** misses from **capacity** misses and
deliberately folds compulsory (cold) misses into capacity "for simplicity".
We keep all three values so the ground-truth oracle can report the full
breakdown, and provide :meth:`MissClass.is_conflict` for the paper's binary
view.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MissClass(Enum):
    """The classic (Hill) taxonomy of cache misses.

    * ``CONFLICT`` — the miss would have been a hit in a fully-associative
      LRU cache of the same capacity.
    * ``CAPACITY`` — the block was referenced before but has fallen out of
      even a fully-associative cache of this size.
    * ``COMPULSORY`` — first-ever reference to the block.

    The MCT itself only ever emits CONFLICT or CAPACITY (it cannot see
    compulsory misses; they simply fail to match and land in CAPACITY,
    exactly as the paper groups them).
    """

    CONFLICT = "conflict"
    CAPACITY = "capacity"
    COMPULSORY = "compulsory"

    @property
    def is_conflict(self) -> bool:
        """The paper's binary view: conflict vs everything else."""
        return self is MissClass.CONFLICT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClassifiedMiss:
    """One miss together with everything the classifiers said about it.

    Attributes
    ----------
    address:
        The missing byte address.
    set_index:
        The L1 set the address maps to.
    predicted:
        The MCT's on-the-fly classification.
    actual:
        The ground-truth (classic-definition) classification, when an
        oracle was running; None in pure-hardware simulations.
    evicted_conflict_bit:
        The conflict bit of the line this miss displaced (False when the
        fill hit an empty way) — input to the in/and/or-conflict filters.
    """

    address: int
    set_index: int
    predicted: MissClass
    actual: MissClass | None = None
    evicted_conflict_bit: bool = False

    @property
    def correct(self) -> bool | None:
        """Whether prediction matched truth under the binary grouping."""
        if self.actual is None:
            return None
        return self.predicted.is_conflict == self.actual.is_conflict
