"""Classification-accuracy measurement harness (Figures 1 and 2).

Runs a reference stream through three models in lockstep:

1. the real set-associative LRU cache under study,
2. the Miss Classification Table attached to its eviction stream,
3. the ground-truth oracle (fully-associative LRU + first-touch set).

For every real-cache miss the harness records (MCT prediction, oracle
truth) into a :class:`~repro.cache.stats.ClassificationStats` confusion
matrix, from which the paper's *conflict accuracy* and *capacity accuracy*
bars are read directly.

The paper's grouping is honoured: compulsory misses count as capacity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Protocol

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats, ClassificationStats
from repro.core.classification import MissClass
from repro.core.ground_truth import GroundTruthClassifier
from repro.core.mct import MissClassificationTable
from repro.obs.heartbeat import sim_ticker


class MissOracle(Protocol):
    """What :func:`measure_accuracy` needs from a ground-truth model.

    :class:`~repro.core.ground_truth.GroundTruthClassifier` (simulating)
    and :class:`~repro.mrc.oracle.StackDistanceOracle` (replaying a
    shared stack pass) both satisfy it.  The contract inherited from the
    classifier: :meth:`classify_miss` before :meth:`observe` for the
    same reference, and one fresh oracle per replay of a stream.
    """

    def classify_miss(self, addr: int) -> MissClass: ...

    def observe(self, addr: int) -> None: ...


@dataclass
class AccuracyResult:
    """Everything one accuracy run produces."""

    geometry: CacheGeometry
    tag_bits: Optional[int]
    classification: ClassificationStats = field(default_factory=ClassificationStats)
    cache: CacheStats = field(default_factory=CacheStats)
    compulsory_misses: int = 0

    @property
    def conflict_accuracy(self) -> float:
        return self.classification.conflict_accuracy

    @property
    def capacity_accuracy(self) -> float:
        return self.classification.capacity_accuracy

    @property
    def overall_accuracy(self) -> float:
        return self.classification.overall_accuracy

    @property
    def miss_rate(self) -> float:
        return self.cache.miss_rate

    @property
    def conflict_fraction(self) -> float:
        """True conflict misses as a share of all misses, in percent."""
        total = self.classification.total
        return 100.0 * self.classification.true_conflicts / total if total else 0.0


def _accuracy_counters(result: AccuracyResult) -> dict:
    """Counter snapshot of an accuracy run, in the obs metrics shape.

    ``result.cache`` is only populated after the final merge, so
    mid-run deltas carry the classification counters and the closing
    delta carries the cache counters — the replay still reconciles
    exactly against the final snapshot.
    """
    return {
        "classification": asdict(result.classification),
        "cache": asdict(result.cache),
        "compulsory_misses": result.compulsory_misses,
    }


def measure_accuracy(
    addresses: Iterable[int],
    geometry: CacheGeometry,
    *,
    tag_bits: Optional[int] = None,
    oracle: Optional[MissOracle] = None,
) -> AccuracyResult:
    """Measure MCT classification accuracy over a reference stream.

    Parameters
    ----------
    addresses:
        Byte addresses of the data references, in program order.
    geometry:
        The cache configuration under study (Figure 1 sweeps four of
        these; Figure 2 fixes 16KB direct-mapped).
    tag_bits:
        Stored-tag width for the MCT; None stores the complete tag.
    oracle:
        Ground-truth model to classify misses against; defaults to a
        fresh simulating :class:`GroundTruthClassifier` for the
        geometry.  Sweeps that replay one stream through several
        equal-capacity configurations pass
        :meth:`repro.mrc.oracle.SharedGroundTruth.oracle` instead, so
        the fully-associative model is paid for once, not per
        configuration.  Must be fresh (nothing classified yet) and
        built for exactly this stream's capacity view.

    Returns
    -------
    AccuracyResult
        Confusion matrix plus cache-level statistics.
    """
    mct = MissClassificationTable(geometry, tag_bits=tag_bits)
    cache = SetAssociativeCache(geometry, name="accuracy-L1", on_evict=mct.on_evict)
    if oracle is None:
        oracle = GroundTruthClassifier(geometry)
    result = AccuracyResult(geometry=geometry, tag_bits=tag_bits)

    ticker = sim_ticker(
        bench="accuracy",
        policy=f"mct[{'full' if tag_bits is None else tag_bits}b]",
        refs=len(addresses) if hasattr(addresses, "__len__") else None,
        warmup=0,
    )
    if ticker is not None:
        ticker.begin()
    every = ticker.every if ticker is not None else 0
    processed = 0

    for addr in addresses:
        outcome = cache.lookup(addr)
        if not outcome.hit:
            # Classify with both models before any state is updated by
            # this miss, then fill (which feeds the eviction to the MCT).
            predicted = mct.classify(addr)
            actual = oracle.classify_miss(addr)
            result.classification.record(
                predicted_conflict=predicted.is_conflict,
                actual_conflict=actual.is_conflict,
            )
            if actual.value == "compulsory":
                result.compulsory_misses += 1
            cache.fill(addr)
        oracle.observe(addr)
        if every:
            processed += 1
            if processed % every == 0:
                # Accuracy-so-far over the references seen to this point.
                ticker.tick(
                    processed,
                    _accuracy_counters(result),
                    overall_accuracy=round(result.overall_accuracy, 4),
                    conflict_accuracy=round(result.conflict_accuracy, 4),
                    capacity_accuracy=round(result.capacity_accuracy, 4),
                    miss_rate=round(cache.stats.miss_rate, 4),
                )

    result.cache.merge(cache.stats)
    if ticker is not None:
        ticker.finish(
            processed if every else cache.stats.accesses,
            _accuracy_counters(result),
        )
    # Harness debug flag: validate that misses partition exactly into
    # conflict + capacity (compulsory inside capacity) before the numbers
    # can reach any table.
    from repro.harness.invariants import maybe_check_accuracy

    maybe_check_accuracy(result)
    return result


def sweep_tag_bits(
    addresses: list[int],
    geometry: CacheGeometry,
    bit_widths: Iterable[Optional[int]],
) -> list[AccuracyResult]:
    """Run :func:`measure_accuracy` once per stored-tag width (Figure 2).

    ``addresses`` must be a concrete list (it is replayed per width).
    """
    return [
        measure_accuracy(addresses, geometry, tag_bits=bits) for bits in bit_widths
    ]
