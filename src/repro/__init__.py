"""repro — a reproduction of Collins & Tullsen, MICRO 1999.

*Hardware Identification of Cache Conflict Misses*: the Miss
Classification Table (MCT), the conflict-bit filters, and their
applications — victim caching, next-line prefetch filtering, cache
exclusion, pseudo-associative caches, and the Adaptive Miss Buffer — on a
trace-driven memory-hierarchy simulator with synthetic SPEC95-analog
workloads.

Quickstart
----------
>>> from repro import CacheGeometry, measure_accuracy, build
>>> trace = build("tomcatv", n_refs=50_000)
>>> result = measure_accuracy(
...     trace.addresses, CacheGeometry(size=16 * 1024, assoc=1)
... )
>>> result.conflict_accuracy > 50
True
"""

from repro.cache import (
    BufferRole,
    CacheGeometry,
    CacheLine,
    EvictedLine,
    FullyAssociativeLRU,
    SetAssociativeCache,
)
from repro.core import (
    ConflictFilter,
    GroundTruthClassifier,
    MissClass,
    MissClassificationTable,
    measure_accuracy,
    sweep_tag_bits,
)
from repro.system import (
    BASELINE,
    AssistConfig,
    MachineConfig,
    MemorySystem,
    PAPER_MACHINE,
    simulate,
    simulate_policies,
    speedup,
)
from repro.workloads import Trace, build, build_suite

__version__ = "1.0.0"

__all__ = [
    "AssistConfig",
    "BASELINE",
    "BufferRole",
    "CacheGeometry",
    "CacheLine",
    "ConflictFilter",
    "MachineConfig",
    "MemorySystem",
    "PAPER_MACHINE",
    "EvictedLine",
    "FullyAssociativeLRU",
    "GroundTruthClassifier",
    "MissClass",
    "MissClassificationTable",
    "SetAssociativeCache",
    "Trace",
    "__version__",
    "build",
    "build_suite",
    "measure_accuracy",
    "simulate",
    "simulate_policies",
    "speedup",
    "sweep_tag_bits",
]
