"""The cache-assist buffer.

Section 4 of the paper: "We will model a variety of flavors of a cache
assist buffer, which will serve at different times as a victim buffer,
prefetch buffer, cache bypass buffer, or the adaptive miss buffer.  In
each case the structure is very similar" — eight fully-associative entries
(sixteen for the exclusion study), two read and two write ports, one extra
cycle of latency after an L1 miss.

This class is that structure.  Entries carry a :class:`BufferRole` (how
the line entered — the AMB needs "extra bits to remember how a cache line
entered the buffer"), the conflict bit, a dirty bit, and for prefetches a
``ready_time`` and a ``used`` flag so wasted prefetches can be counted
when they fall out of the buffer untouched.

Ordering is LRU over an ``OrderedDict`` — the paper notes the victim
buffer "can be organized as a FIFO from which entries can be taken out of
the middle", which "provides LRU eviction because lines are consumed out
of the victim cache as soon as they are accessed"; with no-swap policies,
hits instead refresh recency (the LRU organization the paper adopts for
an 8-entry buffer).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.line import BufferRole
from repro.cache.stats import BufferStats


@dataclass
class BufferEntry:
    """One assist-buffer line (identified by its block number)."""

    block: int
    role: BufferRole
    conflict_bit: bool = False
    dirty: bool = False
    ready_time: float = 0.0
    used: bool = False


class AssistBuffer:
    """Small fully-associative LRU buffer with role-tagged entries.

    Parameters
    ----------
    entries:
        Capacity in lines (8 in most experiments, 16 for exclusion/AMB-16).
    on_evict:
        Optional hook receiving each :class:`BufferEntry` evicted to make
        room (NOT entries consumed by swaps/moves into the cache); the
        memory system uses it to count wasted prefetches.
    """

    def __init__(
        self,
        entries: int = 8,
        on_evict: Optional[Callable[[BufferEntry], None]] = None,
    ) -> None:
        if entries < 1:
            raise ValueError(f"buffer needs at least one entry, got {entries}")
        self.capacity = entries
        self.on_evict = on_evict
        self.stats = BufferStats()
        self._entries: "OrderedDict[int, BufferEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    def probe(self, block: int) -> Optional[BufferEntry]:
        """Look up a block; counts a probe, does NOT refresh recency."""
        self.stats.probes += 1
        return self._entries.get(block)

    def peek(self, block: int) -> Optional[BufferEntry]:
        """Look up without counting a probe (for internal checks)."""
        return self._entries.get(block)

    def touch(self, block: int) -> None:
        """Refresh a resident block's recency (hit without consumption)."""
        if block in self._entries:
            self._entries.move_to_end(block)

    def remove(self, block: int) -> Optional[BufferEntry]:
        """Take a block out of the middle (swap/move-to-cache consumption)."""
        return self._entries.pop(block, None)

    def insert(self, entry: BufferEntry) -> Optional[BufferEntry]:
        """Add an entry at MRU, evicting LRU if full; returns the evictee.

        Inserting a block that is already resident replaces the old entry
        in place (refreshing recency) — this happens when, e.g., a line is
        victim-filled while an unconsumed prefetch of it is still around.
        """
        old = self._entries.pop(entry.block, None)
        evicted: Optional[BufferEntry] = None
        if old is None and len(self._entries) >= self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted)
        self._entries[entry.block] = entry
        return evicted

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return len(self._entries)

    def blocks(self) -> list[int]:
        """Resident blocks, LRU first."""
        return list(self._entries)

    def flush(self) -> None:
        self._entries.clear()

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AssistBuffer {len(self._entries)}/{self.capacity}>"
