"""Miss-classification history tables (the §5.3 "history" variants).

The paper's *capacity-history* exclusion policy "exclude[s] misses from a
region with a history of capacity misses (using a structure somewhat
similar to the MAT)", and *conflict-history* is the symmetric policy.
This module provides that structure: a direct-mapped, tagged table of
saturating counters per 1KB region, updated only on cache misses (unlike
the MAT, which is touched on every access — that difference is the MCT
approach's main hardware advantage).

A counter moves toward its ceiling when the region misses with the
*tracked* class and toward zero otherwise; a region is flagged once the
counter reaches ``threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.classification import MissClass


@dataclass
class _HistoryEntry:
    tag: int = -1
    count: int = 0


class MissHistoryTable:
    """Per-region saturating history of one miss class.

    Parameters
    ----------
    tracked:
        The miss class whose history is accumulated (CONFLICT or
        CAPACITY; COMPULSORY is folded into CAPACITY as everywhere else).
    entries, region_size:
        Table shape, matching the MAT defaults (1K entries, 1KB regions).
    max_count, threshold:
        2-bit saturating counters by default; a region is "flagged" at
        ``threshold`` (so one stray miss does not flip the decision).
    """

    def __init__(
        self,
        tracked: MissClass,
        entries: int = 1024,
        region_size: int = 1024,
        max_count: int = 3,
        threshold: int = 2,
    ) -> None:
        if tracked is MissClass.COMPULSORY:
            raise ValueError("track CONFLICT or CAPACITY, not COMPULSORY")
        if not 1 <= threshold <= max_count:
            raise ValueError("need 1 <= threshold <= max_count")
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if region_size < 1 or region_size & (region_size - 1):
            raise ValueError(
                f"region_size must be a power of two, got {region_size}"
            )
        self.tracked = tracked
        self.entries = entries
        self.region_size = region_size
        self.max_count = max_count
        self.threshold = threshold
        self._shift = region_size.bit_length() - 1
        self._table: List[_HistoryEntry] = [_HistoryEntry() for _ in range(entries)]

    def _slot(self, addr: int) -> tuple[_HistoryEntry, int]:
        region = addr >> self._shift
        return self._table[region & (self.entries - 1)], region

    def record_miss(self, addr: int, miss_class: MissClass) -> None:
        """Update the region's counter with one classified miss."""
        entry, region = self._slot(addr)
        if entry.tag != region:
            entry.tag = region
            entry.count = 0
        tracked = (
            miss_class is self.tracked
            or (self.tracked is MissClass.CAPACITY and miss_class is MissClass.COMPULSORY)
        )
        if tracked:
            if entry.count < self.max_count:
                entry.count += 1
        elif entry.count > 0:
            entry.count -= 1

    def is_flagged(self, addr: int) -> bool:
        """True when the region has a history of the tracked class."""
        entry, region = self._slot(addr)
        return entry.tag == region and entry.count >= self.threshold

    def reset(self) -> None:
        for entry in self._table:
            entry.tag = -1
            entry.count = 0
