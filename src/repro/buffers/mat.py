"""Johnson & Hwu's Memory Access Table (MAT) — the exclusion baseline.

Johnson and Hwu (ISCA 1997) "record the frequency of access to 1KB regions
of memory, and prevent a cache line from a low-access region from
replacing one from a high-access region" (paper Section 2).  Section 5.3
models a 1K-entry direct-mapped MAT and compares it against MCT-based
exclusion.

Mechanics implemented here (following the original MAT/macroblock design):

* memory is divided into fixed-size *macroblocks* (1KB regions);
* a direct-mapped, tagged table keeps a saturating access counter per
  region; every memory access increments its region's counter (the
  expensive part the paper criticises — the structure is read and written
  on *every* access, 4-wide);
* on a table-entry replacement the new region inherits half of the old
  counter value, preserving some history;
* on a cache miss, the incoming line's region counter is compared with the
  would-be victim's region counter: the incoming line **bypasses** the
  cache when its count is strictly lower (it belongs to a less active
  region than the data it would displace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class _MATEntry:
    tag: int = -1
    count: int = 0


class MemoryAccessTable:
    """Direct-mapped per-region access-frequency table."""

    def __init__(
        self,
        entries: int = 1024,
        region_size: int = 1024,
        max_count: int = 1023,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if region_size < 1 or region_size & (region_size - 1):
            raise ValueError(
                f"region_size must be a power of two, got {region_size}"
            )
        self.entries = entries
        self.region_size = region_size
        self.max_count = max_count
        self._shift = region_size.bit_length() - 1
        self._table: List[_MATEntry] = [_MATEntry() for _ in range(entries)]
        self.accesses = 0
        self.replacements = 0

    # ------------------------------------------------------------------
    def _slot(self, addr: int) -> tuple[_MATEntry, int]:
        region = addr >> self._shift
        return self._table[region & (self.entries - 1)], region

    def record_access(self, addr: int) -> None:
        """Count one access to ``addr``'s region (called on EVERY access)."""
        self.accesses += 1
        entry, region = self._slot(addr)
        if entry.tag != region:
            if entry.tag != -1:
                # Replacement: the new region inherits half the old count
                # so a single cold access does not immediately look "hot".
                self.replacements += 1
            entry.tag = region
            entry.count //= 2
        if entry.count < self.max_count:
            entry.count += 1

    def count_for(self, addr: int) -> int:
        """The current counter for ``addr``'s region (0 when untracked)."""
        entry, region = self._slot(addr)
        return entry.count if entry.tag == region else 0

    def should_bypass(self, incoming_addr: int, victim_addr: int | None) -> bool:
        """Johnson & Hwu's decision: bypass when the incoming line's region
        is strictly colder than the victim line's region.

        ``victim_addr`` is None when the fill would land in an empty way —
        never bypass then (there is nothing worth protecting).
        """
        if victim_addr is None:
            return False
        return self.count_for(incoming_addr) < self.count_for(victim_addr)

    def reset(self) -> None:
        for entry in self._table:
            entry.tag = -1
            entry.count = 0
        self.accesses = 0
        self.replacements = 0
