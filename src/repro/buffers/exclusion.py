"""Cache-exclusion policies (paper §5.3, Figure 5).

Not all data deserves cache space: lines with only short-term spatial
locality can achieve a higher overall hit rate by *bypassing* the cache
into a small buffer.  The paper compares Johnson & Hwu's Memory Access
Table (updated on every access) against MCT-based filters (consulted only
on misses), all routing excluded lines into a 16-entry bypass buffer:

1. ``no buffer``        — the baseline.
2. ``MAT``              — bypass when the incoming line's 1KB region is
   colder than the victim's region.
3. ``conflict``         — bypass misses the MCT labels conflict.
4. ``conflict history`` — bypass regions with a history of conflict misses.
5. ``capacity``         — bypass misses the MCT labels capacity
   (the paper's winner: capacity misses have "short but temporary bursts
   of activity", exactly what the bypass buffer serves well).
6. ``capacity history`` — bypass regions with a history of capacity misses.

All MCT variants use the *out-conflict* filter (i.e. the classification of
the new miss) and the §5.3 MCT tweak: a bypassed line's tag is installed
in the MCT so that a later miss to it can be recognised as a conflict.
"""

from __future__ import annotations

from typing import List

from repro.system.policies import AssistConfig, ExclusionMode

#: §5.3 uses a larger buffer — the MAT "was originally studied with a much
#: larger buffer, and we found it to do poorly with an 8-entry buffer".
EXCLUSION_BUFFER_ENTRIES = 16


def no_exclusion() -> AssistConfig:
    return AssistConfig(name="no buffer")


def exclusion(mode: ExclusionMode, entries: int = EXCLUSION_BUFFER_ENTRIES) -> AssistConfig:
    """A bypass policy routing excluded lines into the buffer."""
    return AssistConfig(
        name=str(mode),
        buffer_entries=entries,
        exclusion=mode,
    )


def figure5_policies(entries: int = EXCLUSION_BUFFER_ENTRIES) -> List[AssistConfig]:
    """The six bars of Figure 5, in paper order."""
    return [
        no_exclusion(),
        exclusion(ExclusionMode.MAT, entries),
        exclusion(ExclusionMode.CONFLICT, entries),
        exclusion(ExclusionMode.CONFLICT_HISTORY, entries),
        exclusion(ExclusionMode.CAPACITY, entries),
        exclusion(ExclusionMode.CAPACITY_HISTORY, entries),
    ]
