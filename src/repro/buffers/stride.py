"""Chen & Baer's Reference Prediction Table (RPT) stride prefetcher.

Section 5.2 of the paper: "We examined both a next-line prefetcher and a
stride predictor (results not shown here) based on Chen and Baer's
reference prediction table... However, for most of the benchmarks we use,
particularly the irregular applications, the simple next-line prefetcher
actually provides higher coverage of misses" — at the cost of many wasted
prefetches, which is what the MCT filtering then attacks.

We implement the RPT so that comparison can be reproduced (see
``compare_prefetchers`` and ``benchmarks/test_ablations.py``).  The RPT is
a PC-indexed table; each entry follows Chen & Baer's four-state machine:

    INITIAL   first sighting; record the address.
    TRANSIENT stride changed; record the new candidate stride.
    STEADY    stride confirmed twice; predictions are issued.
    NO_PRED   stride keeps changing; stand down until it stabilises.

Unlike the MCT (touched only on misses), the RPT is read and updated on
**every memory access** — the hardware-cost contrast the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.workloads.trace import Trace


class RPTState(Enum):
    INITIAL = "initial"
    TRANSIENT = "transient"
    STEADY = "steady"
    NO_PRED = "no-pred"


@dataclass
class _RPTEntry:
    tag: int = -1
    last_addr: int = 0
    stride: int = 0
    state: RPTState = RPTState.INITIAL


class ReferencePredictionTable:
    """Direct-mapped, PC-indexed stride predictor.

    Parameters
    ----------
    entries:
        Table size (power of two).  Chen & Baer evaluate 512-entry tables;
        the default matches.

    The only public operation is :meth:`observe`, called with every
    (pc, address) pair in program order; it returns the predicted next
    address when the entry is STEADY, else None.
    """

    def __init__(self, entries: int = 512) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self._table = [_RPTEntry() for _ in range(entries)]
        self.observations = 0
        self.predictions = 0

    def observe(self, pc: int, addr: int) -> Optional[int]:
        """Record one access; returns a prefetch address or None."""
        self.observations += 1
        entry = self._table[(pc >> 2) & (self.entries - 1)]
        if entry.tag != pc:
            entry.tag = pc
            entry.last_addr = addr
            entry.stride = 0
            entry.state = RPTState.INITIAL
            return None

        new_stride = addr - entry.last_addr
        correct = new_stride == entry.stride

        if entry.state is RPTState.INITIAL:
            # First revisit: adopt the stride, move toward steady.
            entry.state = RPTState.STEADY if correct else RPTState.TRANSIENT
            entry.stride = new_stride
        elif entry.state is RPTState.STEADY:
            if not correct:
                entry.state = RPTState.INITIAL
        elif entry.state is RPTState.TRANSIENT:
            if correct:
                entry.state = RPTState.STEADY
            else:
                entry.stride = new_stride
                entry.state = RPTState.NO_PRED
        else:  # NO_PRED
            if correct:
                entry.state = RPTState.TRANSIENT
            else:
                entry.stride = new_stride

        entry.last_addr = addr
        if entry.state is RPTState.STEADY and entry.stride != 0:
            self.predictions += 1
            return addr + entry.stride
        return None

    def state_of(self, pc: int) -> Optional[RPTState]:
        entry = self._table[(pc >> 2) & (self.entries - 1)]
        return entry.state if entry.tag == pc else None


def line_prediction(addr: int, stride: int, line_size: int = 64) -> int:
    """Advance a stride prediction to the first address on a NEW line.

    A word-granular stride (e.g. 8 bytes) predicts an address on the line
    just referenced, which is useless to prefetch; Chen & Baer solve this
    with a lookahead distance.  We run the stride forward to the first
    iteration that leaves the current line — the smallest lookahead that
    fetches new data.
    """
    if stride == 0:
        return addr
    k = 1
    base_line = addr // line_size
    while (addr + k * stride) // line_size == base_line and k < line_size:
        k += 1
    return addr + k * stride


@dataclass
class PrefetcherComparison:
    """Coverage/accuracy of next-line vs RPT on one trace (paper §5.2)."""

    next_line_coverage: float
    next_line_accuracy: float
    rpt_coverage: float
    rpt_accuracy: float
    misses: int = 0


def _evaluate(
    trace: Trace,
    geometry: CacheGeometry,
    *,
    use_rpt: bool,
    buffer_entries: int = 8,
) -> tuple[float, float, int]:
    """Coverage and accuracy of one prefetcher over a trace.

    Uses a functional cache + small FIFO prefetch buffer (no timing): on a
    miss that hits the prefetch buffer, the line moves into the cache.
    Returns (coverage%, accuracy%, misses).
    """
    from collections import OrderedDict

    cache = SetAssociativeCache(geometry)
    rpt = ReferencePredictionTable() if use_rpt else None
    buffer: "OrderedDict[int, bool]" = OrderedDict()  # block -> used
    issued = used = wasted = misses = covered = 0

    def insert(block: int) -> None:
        nonlocal issued, wasted
        if block in buffer or cache.probe(block * geometry.line_size):
            return
        if len(buffer) >= buffer_entries:
            _, was_used = buffer.popitem(last=False)
            if not was_used:
                wasted += 1
        buffer[block] = False
        issued += 1

    for addr, pc in zip(trace.addresses, trace.pcs):
        addr = int(addr)
        out = cache.lookup(addr)
        prediction: Optional[int] = None
        if rpt is not None:
            prediction = rpt.observe(int(pc), addr)
        if not out.hit:
            misses += 1
            block = geometry.block_number(addr)
            if block in buffer:
                covered += 1
                if not buffer[block]:
                    used += 1
                del buffer[block]
                cache.fill(addr)
                if rpt is None:
                    insert(block + 1)
            else:
                cache.fill(addr)
                if rpt is None:
                    insert(block + 1)
        if prediction is not None:
            # Run the stride forward to the first new line (lookahead).
            target = line_prediction(addr, prediction - addr, geometry.line_size)
            if not cache.probe(target):
                insert(geometry.block_number(target))

    coverage = 100.0 * covered / misses if misses else 0.0
    accuracy = 100.0 * used / issued if issued else 0.0
    return coverage, accuracy, misses


def compare_prefetchers(
    trace: Trace, geometry: CacheGeometry, *, buffer_entries: int = 8
) -> PrefetcherComparison:
    """Reproduce §5.2's (unshown) comparison on one trace.

    Expected shape on the irregular analogs: next-line has the higher
    coverage, the RPT the higher accuracy.
    """
    nl_cov, nl_acc, misses = _evaluate(
        trace, geometry, use_rpt=False, buffer_entries=buffer_entries
    )
    rpt_cov, rpt_acc, _ = _evaluate(
        trace, geometry, use_rpt=True, buffer_entries=buffer_entries
    )
    return PrefetcherComparison(
        next_line_coverage=nl_cov,
        next_line_accuracy=nl_acc,
        rpt_coverage=rpt_cov,
        rpt_accuracy=rpt_acc,
        misses=misses,
    )
