"""Next-line prefetch policies (paper §5.2, Figure 4).

The next-line prefetcher fetches the line after a missing line into the
assist buffer; on a buffer hit the line moves into the cache and the next
line is prefetched.  Conflict misses are poor prefetch candidates — the
paper filters them out with each of the four conflict filters:

* bar 1 — unfiltered next-line prefetching,
* bars 2-5 — suppress the prefetch when the *in- / out- / and- /
  or-conflict* filter labels the miss a conflict event.  The *or-conflict*
  filter is "the most discriminating, because it chooses not to prefetch
  if there is even a hint of a conflict miss".

Filtering mainly buys prefetch *accuracy* (~25% fewer wasted prefetches);
speedups are measured on the slow-bus machine and remain modest — the
paper's point is that the real win is doing something better than
prefetching with the conflict misses (the AMB, §5.5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.filters import ConflictFilter
from repro.system.policies import AssistConfig


def no_prefetch() -> AssistConfig:
    """Baseline for Figure 4(b)'s speedups."""
    return AssistConfig(name="no prefetch")


def next_line(entries: int = 8, filt: Optional[ConflictFilter] = None) -> AssistConfig:
    """A next-line prefetcher, optionally conflict-filtered."""
    name = "next-line" if filt is None else f"filter {filt.value}"
    return AssistConfig(
        name=name,
        buffer_entries=entries,
        prefetch=True,
        prefetch_filter=filt,
    )


def figure4_policies(entries: int = 8) -> List[AssistConfig]:
    """The five bars of Figure 4, in paper order."""
    return [
        next_line(entries),
        next_line(entries, ConflictFilter.IN_CONFLICT),
        next_line(entries, ConflictFilter.OUT_CONFLICT),
        next_line(entries, ConflictFilter.AND_CONFLICT),
        next_line(entries, ConflictFilter.OR_CONFLICT),
    ]
