"""Victim-cache policies (paper §5.1, Figure 3 and Table 1).

Jouppi's victim buffer holds lines recently evicted from the cache; a hit
returns the data far faster than a full miss.  The paper evaluates four
policies, all using the *or-conflict* filter ("the most liberal
identification of conflict misses"):

1. ``traditional``  — every evicted line fills the buffer; every buffer
   hit swaps the line back into the cache.
2. ``filter_swaps`` — no swap when the buffer hit is a conflict event;
   the buffer serves the data and keeps the line, eliminating the heavy
   ping-ponging of lines between cache and buffer.
3. ``filter_fills`` — evicted lines bypass the buffer when the eviction
   is a capacity event (only conflict events are worth victim-caching).
4. ``filter_both``  — both of the above (the winning combination: ~3%
   average speedup, from pressure relief rather than hit rate).
"""

from __future__ import annotations

from typing import List

from repro.core.filters import ConflictFilter
from repro.system.policies import AssistConfig

#: §5.1: "Each of these policies use the or-conflict algorithm".
VICTIM_FILTER = ConflictFilter.OR_CONFLICT


def no_victim_cache() -> AssistConfig:
    """The first row of Table 1: no buffer at all."""
    return AssistConfig(name="no V cache")


def traditional(entries: int = 8) -> AssistConfig:
    """A classic victim cache: fill always, swap always."""
    return AssistConfig(
        name="V cache",
        buffer_entries=entries,
        victim_fills=True,
        victim_swap=True,
    )


def filter_swaps(entries: int = 8) -> AssistConfig:
    """Do not swap on a victim hit when it is a conflict event."""
    return AssistConfig(
        name="filter swaps",
        buffer_entries=entries,
        victim_fills=True,
        victim_swap=True,
        victim_no_swap_filter=VICTIM_FILTER,
    )


def filter_fills(entries: int = 8) -> AssistConfig:
    """Only fill the buffer when the eviction is a conflict event."""
    return AssistConfig(
        name="filter fills",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=VICTIM_FILTER,
        victim_swap=True,
    )


def filter_both(entries: int = 8) -> AssistConfig:
    """Filter both swaps and fills (the combined policy of Figure 3)."""
    return AssistConfig(
        name="filter both",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=VICTIM_FILTER,
        victim_swap=True,
        victim_no_swap_filter=VICTIM_FILTER,
    )


def table1_policies(entries: int = 8) -> List[AssistConfig]:
    """The five rows of Table 1, in paper order."""
    return [
        no_victim_cache(),
        traditional(entries),
        filter_swaps(entries),
        filter_fills(entries),
        filter_both(entries),
    ]


def figure3_policies(entries: int = 8) -> List[AssistConfig]:
    """The four bars of Figure 3 (the with-buffer policies)."""
    return [
        traditional(entries),
        filter_swaps(entries),
        filter_fills(entries),
        filter_both(entries),
    ]
