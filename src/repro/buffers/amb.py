"""The Adaptive Miss Buffer (paper §5.5, Figures 6-7).

"The real power in miss classification is the opportunity to apply the
best optimization to each type of miss individually."  The AMB is a single
small buffer whose entries remember how they arrived (victim / prefetch /
exclusion), letting one structure serve several policies at once:

* ``Vict``      — victim caching alone, best single variant (filtered, no
  swaps on conflict events — i.e. §5.1's winning policy).
* ``Pref``      — filtered next-line prefetching alone (§5.2's winner).
* ``Excl``      — capacity-miss exclusion alone (§5.3's winner).
* ``VictPref``  — victim-cache (without swaps) the conflict misses,
  prefetch on the capacity misses.  Best at 8 entries; "more than doubled
  the overall gain of any single policy".
* ``PrefExcl``  — prefetch and exclude capacity misses; conflict misses
  get nothing.
* ``VictExcl``  — victim-cache conflict misses, exclude capacity misses.
* ``VicPreExc`` — everything: exclude *and* prefetch the capacity
  (bypass) misses, victim-cache the conflict misses.  Attractive with a
  16-entry buffer.

"All multiple-policy results shown use the out-conflict filter" — i.e.
decisions depend only on the new miss's MCT classification, no per-line
conflict bits required.
"""

from __future__ import annotations

from typing import List

from repro.core.filters import ConflictFilter
from repro.system.policies import AssistConfig, ExclusionMode

#: §5.5: multiple-policy results use the out-conflict filter.
AMB_FILTER = ConflictFilter.OUT_CONFLICT


def vict(entries: int = 8) -> AssistConfig:
    """Best single victim policy (filtered fills, no swaps on conflicts)."""
    return AssistConfig(
        name="Vict",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=AMB_FILTER,
        victim_swap=True,
        victim_no_swap_filter=AMB_FILTER,
    )


def pref(entries: int = 8) -> AssistConfig:
    """Best single prefetch policy (capacity misses only)."""
    return AssistConfig(
        name="Pref",
        buffer_entries=entries,
        prefetch=True,
        prefetch_filter=AMB_FILTER,
    )


def excl(entries: int = 8) -> AssistConfig:
    """Best single exclusion policy (bypass capacity misses)."""
    return AssistConfig(
        name="Excl",
        buffer_entries=entries,
        exclusion=ExclusionMode.CAPACITY,
    )


def vict_pref(entries: int = 8) -> AssistConfig:
    """Victim-cache (no swap) conflict misses; prefetch capacity misses."""
    return AssistConfig(
        name="VictPref",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=AMB_FILTER,
        victim_swap=False,
        prefetch=True,
        prefetch_filter=AMB_FILTER,
    )


def pref_excl(entries: int = 8) -> AssistConfig:
    """Prefetch and exclude capacity misses; nothing for conflicts."""
    return AssistConfig(
        name="PrefExcl",
        buffer_entries=entries,
        prefetch=True,
        prefetch_filter=AMB_FILTER,
        exclusion=ExclusionMode.CAPACITY,
    )


def vict_excl(entries: int = 8) -> AssistConfig:
    """Victim-cache conflict misses; exclude capacity misses."""
    return AssistConfig(
        name="VictExcl",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=AMB_FILTER,
        victim_swap=False,
        exclusion=ExclusionMode.CAPACITY,
    )


def vic_pre_exc(entries: int = 8) -> AssistConfig:
    """The everything policy: exclude and prefetch bypass (capacity)
    misses, victim-cache conflict misses."""
    return AssistConfig(
        name="VicPreExc",
        buffer_entries=entries,
        victim_fills=True,
        victim_fill_filter=AMB_FILTER,
        victim_swap=False,
        prefetch=True,
        prefetch_filter=AMB_FILTER,
        exclusion=ExclusionMode.CAPACITY,
    )


def figure6_policies(entries: int = 8) -> List[AssistConfig]:
    """The seven bars of Figure 6 for one buffer size."""
    return [
        vict(entries),
        pref(entries),
        excl(entries),
        vict_pref(entries),
        pref_excl(entries),
        vict_excl(entries),
        vic_pre_exc(entries),
    ]


SINGLE_POLICY_NAMES = ("Vict", "Pref", "Excl")
COMBINED_POLICY_NAMES = ("VictPref", "PrefExcl", "VictExcl", "VicPreExc")
