"""Cache-assist structures and named policies for each paper figure."""

from repro.buffers.assist import AssistBuffer, BufferEntry
from repro.buffers.history import MissHistoryTable
from repro.buffers.mat import MemoryAccessTable
from repro.buffers.stride import (
    PrefetcherComparison,
    ReferencePredictionTable,
    compare_prefetchers,
)

from repro.buffers import amb, exclusion, prefetch, victim

__all__ = [
    "AssistBuffer",
    "BufferEntry",
    "MemoryAccessTable",
    "MissHistoryTable",
    "PrefetcherComparison",
    "ReferencePredictionTable",
    "amb",
    "compare_prefetchers",
    "exclusion",
    "prefetch",
    "victim",
]
