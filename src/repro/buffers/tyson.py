"""Tyson et al.'s PC-indexed cache-exclusion predictor.

Section 5.3's other prior-work comparator: "Tyson uses a table, indexed by
program counter, to track hit/miss frequency, and excludes from the cache
accesses predicted to miss with high likelihood" (Tyson, Farrens,
Matthews & Pleszkun, MICRO-28 1995).  The paper models only Johnson &
Hwu's MAT, noting both schemes "require tables that are updated on every
access"; with per-reference PCs available in our traces we can include
the Tyson predictor as well.

Mechanics: a direct-mapped, tagged table of 2-bit saturating counters per
load PC.  Every access updates its PC's counter toward "misses" on a
cache miss and toward "hits" on a hit; a load whose counter is saturated
at the miss end is predicted to keep missing, and its line bypasses the
cache into the assist buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import SystemStats
from repro.workloads.trace import Trace


@dataclass
class _TysonEntry:
    tag: int = -1
    count: int = 0  # 0 = strongly hits ... max = strongly misses


class TysonPredictor:
    """Per-PC hit/miss frequency table with bypass prediction."""

    def __init__(
        self, entries: int = 1024, max_count: int = 3, threshold: int = 3
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if not 1 <= threshold <= max_count:
            raise ValueError("need 1 <= threshold <= max_count")
        self.entries = entries
        self.max_count = max_count
        self.threshold = threshold
        self._table: List[_TysonEntry] = [_TysonEntry() for _ in range(entries)]
        self.updates = 0

    def _slot(self, pc: int) -> _TysonEntry:
        return self._table[(pc >> 2) & (self.entries - 1)]

    def record(self, pc: int, *, hit: bool) -> None:
        """Update the PC's counter with one access outcome."""
        self.updates += 1
        entry = self._slot(pc)
        if entry.tag != pc:
            entry.tag = pc
            entry.count = 0
        if hit:
            if entry.count > 0:
                entry.count -= 1
        elif entry.count < self.max_count:
            entry.count += 1

    def should_bypass(self, pc: int) -> bool:
        """True when this load is predicted to keep missing."""
        entry = self._slot(pc)
        return entry.tag == pc and entry.count >= self.threshold


@dataclass
class TysonResult:
    """Hit rates of a Tyson-filtered cache + bypass buffer run."""

    d_hit_rate: float
    buffer_hit_rate: float
    bypasses: int

    @property
    def total_hit_rate(self) -> float:
        return self.d_hit_rate + self.buffer_hit_rate


def simulate_tyson(
    trace: Trace,
    geometry: CacheGeometry,
    *,
    buffer_entries: int = 16,
) -> TysonResult:
    """Functional (no-timing) run of Tyson-style exclusion on one trace.

    Misses from bypass-predicted PCs go into a small FIFO bypass buffer
    instead of the cache, mirroring the §5.3 experimental setup.
    """
    from collections import OrderedDict

    predictor = TysonPredictor()
    cache = SetAssociativeCache(geometry)
    buffer: "OrderedDict[int, None]" = OrderedDict()
    accesses = hits = buffer_hits = bypasses = 0

    for addr, pc in zip(trace.addresses, trace.pcs):
        addr, pc = int(addr), int(pc)
        accesses += 1
        out = cache.lookup(addr)
        if out.hit:
            hits += 1
            predictor.record(pc, hit=True)
            continue
        block = geometry.block_number(addr)
        if block in buffer:
            buffer_hits += 1
            buffer.move_to_end(block)
            predictor.record(pc, hit=True)  # served without a memory trip
            continue
        predictor.record(pc, hit=False)
        if predictor.should_bypass(pc):
            bypasses += 1
            if len(buffer) >= buffer_entries:
                buffer.popitem(last=False)
            buffer[block] = None
        else:
            cache.fill(addr)

    return TysonResult(
        d_hit_rate=100.0 * hits / accesses if accesses else 0.0,
        buffer_hit_rate=100.0 * buffer_hits / accesses if accesses else 0.0,
        bypasses=bypasses,
    )
