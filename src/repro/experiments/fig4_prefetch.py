"""Figure 4 — next-line prefetch filtering.

Five configurations: an unfiltered next-line prefetcher and four filtered
variants (ignore in- / out- / and- / or-conflict misses).  The paper's
findings:

* filtering significantly increases prefetch **accuracy** (fewer wasted
  prefetches) — about 25% better;
* the or-conflict filter is the most discriminating;
* **speedups** (measured on a machine with a slower L1-L2 bus) change
  little — the payoff of classification is not in skipping prefetches but
  in doing something better with conflict misses (the AMB).

This experiment reports both the accuracy table and the slow-bus speedup
table.
"""

from __future__ import annotations

from repro.buffers.prefetch import figure4_policies, no_prefetch
from repro.experiments._speedups import run_policies_over_suite, speedup_table
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)
from repro.system.config import SLOW_BUS_MACHINE


def run_accuracy(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Prefetch accuracy (useful/issued) and waste per filter."""
    suite = params.bench_suite(SECTION5_SUITE)
    policies = figure4_policies()
    stats = run_policies_over_suite(policies, params, suite, SLOW_BUS_MACHINE)

    result = ExperimentResult(
        experiment_id="fig4a",
        title="Next-line prefetch accuracy by filter (suite aggregate)",
        headers=["policy", "issued", "used", "wasted", "accuracy %"],
        paper_reference="Figure 4: filtering raises accuracy ~25%",
    )
    for p in policies:
        issued = used = wasted = 0
        for bench in suite:
            b = stats[bench][p.name].buffer
            issued += b.prefetches_issued
            used += b.prefetches_used
            wasted += b.prefetches_wasted
        result.add_row(
            p.name, issued, used, wasted, 100.0 * used / issued if issued else 0.0
        )
    return result


def run_speedup(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Figure 4(b): speedup over no prefetching, slow-bus machine."""
    suite = params.bench_suite(SECTION5_SUITE)
    return speedup_table(
        experiment_id="fig4b",
        title="Next-line prefetch speedups, slow L1-L2 bus (vs no prefetch)",
        baseline=no_prefetch(),
        policies=figure4_policies(),
        params=params,
        suite=suite,
        machine=SLOW_BUS_MACHINE,
        paper_reference="Figure 4(b): differences between filters are small",
    )


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Default view: the accuracy table (Figure 4's headline result)."""
    return run_accuracy(params)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run_accuracy()))
    print()
    print(format_result(run_speedup()))
