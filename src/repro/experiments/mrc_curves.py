"""Miss-ratio curves with conflict decomposition (subsystem figure).

Not a figure from the paper: the paper fixes one 16KB geometry and asks
*which* misses are conflicts; this experiment sweeps capacity and shows
*where* conflicts live on the miss-ratio curve.  One exact stack pass
per benchmark yields the FA-LRU curve at every probed size, and the
decomposition replays the direct-mapped geometry per size to split real
misses into Hill's compulsory/capacity/conflict classes — the
"conflict-share band" between the real-cache curve and the FA curve.

``mrc.main`` runs the exact engine; ``mrc_sampled.main`` compares it
against SHARDS fixed-size sampling (1024 blocks), reporting per-size
absolute error.  Both emit ``mrc_start``/``mrc_point``/``mrc_end``
events when observability is active.

Chart hint: ``repro-experiments mrc --chart "conflict share %"``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)
from repro.mrc.curve import MissRatioCurve, curve_from_profile, default_size_ladder
from repro.mrc.decompose import ConflictSplit, conflict_decomposition
from repro.mrc.sampling import sampled_curve
from repro.mrc.stack import compute_profile
from repro.obs.mrc_events import mrc_ticker
from repro.workloads.spec_analogs import build

#: Decomposition geometry: the paper's direct-mapped configuration.
DECOMPOSE_ASSOC = 1

#: Fixed-size SHARDS bound used by the sampled comparison (see the
#: error model in :mod:`repro.mrc.sampling`: ~1K sampled blocks keeps
#: mean absolute miss-ratio error around half a percent on this suite).
SAMPLE_MAX_BLOCKS = 1024


def _emit_curve(bench: str, mode: str, curve: MissRatioCurve) -> None:
    """Report one finished curve through the obs layer (if active)."""
    ticker = mrc_ticker(
        bench=bench,
        mode=mode,
        refs=curve.total_refs,
        sizes_lines=curve.sizes_lines,
    )
    if ticker is None:
        return
    ticker.begin()
    ratios = curve.miss_ratios()
    for i, size in enumerate(curve.sizes_lines):
        ticker.point(size, curve.misses[i], ratios[i])
    ticker.finish()


def _suite_traces(
    params: ExperimentParams, suite: List[str]
) -> Dict[str, "np.ndarray"]:
    return {
        name: build(name, params.n_refs, params.seed).addresses
        for name in suite
    }


def run_exact(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Exact MRC + conflict decomposition, suite average per size."""
    suite = params.bench_suite(SECTION5_SUITE)
    result = ExperimentResult(
        experiment_id="mrc",
        title="Miss-ratio curve with conflict decomposition "
        "(direct-mapped, suite average)",
        headers=[
            "size KB",
            "FA miss %",
            "real miss %",
            "compulsory %",
            "capacity %",
            "conflict %",
            "conflict share %",
        ],
        paper_reference="subsystem figure (beyond the paper): capacity "
        "sweep of Hill's conflict share, cf. §3's fixed 16KB point",
    )
    traces = _suite_traces(params, suite)
    sizes = default_size_ladder()
    per_size: Dict[int, List[Tuple[float, ConflictSplit]]] = {s: [] for s in sizes}
    for name, addresses in traces.items():
        profile = compute_profile(addresses)
        curve = curve_from_profile(profile, sizes)
        _emit_curve(name, "exact", curve)
        splits = conflict_decomposition(
            addresses,
            assoc=DECOMPOSE_ASSOC,
            sizes_lines=sizes,
            profile=profile,
        )
        ratios = curve.miss_ratios()
        for ratio, split in zip(ratios, splits):
            per_size[split.size_lines].append((ratio, split))
    for size in sizes:
        entries = per_size[size]
        n = len(entries)
        fa = 100.0 * sum(r for r, _ in entries) / n
        refs = params.n_refs
        real = 100.0 * sum(s.misses for _, s in entries) / (n * refs)
        comp = 100.0 * sum(s.compulsory for _, s in entries) / (n * refs)
        cap = 100.0 * sum(s.capacity for _, s in entries) / (n * refs)
        conf = 100.0 * sum(s.conflict for _, s in entries) / (n * refs)
        share = sum(s.conflict_share for _, s in entries) / n
        result.add_row(
            size * 64 // 1024,
            round(fa, 2),
            round(real, 2),
            round(comp, 2),
            round(cap, 2),
            round(conf, 2),
            round(share, 1),
        )
    result.notes.append(
        "'conflict share %' is the band between the real (direct-mapped) "
        "curve and the FA curve, as a share of real misses; one exact "
        "stack pass per benchmark prices every size at once."
    )
    result.notes.append(
        "MRC passes use the full trace (no warmup split): cold misses "
        "are a class being measured, not noise to discard."
    )
    return result


def run_sampled(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Exact vs SHARDS fixed-size curves, per-size absolute error."""
    suite = params.bench_suite(SECTION5_SUITE)
    result = ExperimentResult(
        experiment_id="mrc_sampled",
        title=f"SHARDS fixed-size ({SAMPLE_MAX_BLOCKS} blocks) vs exact "
        "MRC (suite average)",
        headers=[
            "size KB",
            "exact miss %",
            "sampled miss %",
            "mean abs err %",
            "max abs err %",
        ],
        paper_reference="subsystem validation: Waldspurger et al., "
        "FAST 2015 sampling against the exact Mattson pass",
    )
    sizes = default_size_ladder()
    exact_by_size = [0.0] * len(sizes)
    sampled_by_size = [0.0] * len(sizes)
    err_sum = [0.0] * len(sizes)
    err_max = [0.0] * len(sizes)
    for name, addresses in _suite_traces(params, suite).items():
        curve = curve_from_profile(compute_profile(addresses), sizes)
        sample = sampled_curve(
            addresses,
            sizes_lines=sizes,
            max_blocks=SAMPLE_MAX_BLOCKS,
            seed=params.seed,
        )
        _emit_curve(name, "sampled", sample.curve)
        exact_r = curve.miss_ratios()
        sampled_r = sample.curve.miss_ratios()
        for i in range(len(sizes)):
            err = abs(exact_r[i] - sampled_r[i])
            exact_by_size[i] += exact_r[i]
            sampled_by_size[i] += sampled_r[i]
            err_sum[i] += err
            err_max[i] = max(err_max[i], err)
    n = len(suite)
    for i, size in enumerate(sizes):
        result.add_row(
            size * 64 // 1024,
            round(100.0 * exact_by_size[i] / n, 2),
            round(100.0 * sampled_by_size[i] / n, 2),
            round(100.0 * err_sum[i] / n, 2),
            round(100.0 * err_max[i], 2),
        )
    result.notes.append(
        "Sampling hash is seeded from the params seed; identical params "
        "always reproduce the identical sampled curve."
    )
    return result
