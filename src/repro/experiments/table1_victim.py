"""Table 1 — victim-cache hit rates and swap/fill traffic.

Columns match the paper: data-cache hit rate, victim-cache hit rate,
their total, and swaps/fills as a percentage of all accesses, for five
configurations (no victim cache, traditional, filter swaps, filter fills,
filter both).

Paper values (suite average): no-swap policies trade D$ hit rate for
victim-cache hit rate at roughly constant total; filtering fills cuts the
fill rate by more than half; filtering swaps nearly eliminates swaps.
"""

from __future__ import annotations

from repro.buffers.victim import table1_policies
from repro.experiments._speedups import run_policies_over_suite
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    policies = table1_policies()
    stats = run_policies_over_suite(policies, params, suite)

    result = ExperimentResult(
        experiment_id="table1",
        title="Victim-cache hit rates and traffic (suite average, % of accesses)",
        headers=["policy", "D$ HR", "V$ HR", "Total", "swaps", "fills"],
        paper_reference="Table 1: V cache 88.2/6.4/94.7/1.7/6.6; "
        "filter both 80.8/13.6/94.4/0.1/2.6",
    )
    for p in policies:
        d = v = sw = fi = 0.0
        for bench in suite:
            s = stats[bench][p.name]
            acc = s.l1.accesses
            d += s.l1.hit_rate
            v += s.buffer.hit_rate(acc)
            sw += s.buffer.swap_rate(acc)
            fi += s.buffer.fill_rate(acc)
        n = len(suite)
        result.add_row(p.name, d / n, v / n, (d + v) / n, sw / n, fi / n)
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
