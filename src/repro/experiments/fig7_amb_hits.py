"""Figure 7 — hit-rate components of the Adaptive Miss Buffer policies.

For each AMB policy, the average data-cache hit rate plus the buffer hit
rate broken down by role (victim / prefetch / exclusion), as percentages
of all accesses.  The paper reads off this figure that the AMB "is indeed
deriving its performance by optimizing the coverage of each type of miss"
— on average a factor of 1.4 (30% reduction) in total miss rate over the
best individual policy.
"""

from __future__ import annotations

from repro.buffers.amb import SINGLE_POLICY_NAMES, figure6_policies
from repro.experiments._speedups import run_policies_over_suite
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)


def run(
    params: ExperimentParams = DEFAULT_PARAMS, entries: int = 8
) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    policies = figure6_policies(entries)
    stats = run_policies_over_suite(policies, params, suite)

    result = ExperimentResult(
        experiment_id=f"fig7-{entries}",
        title=f"AMB hit-rate components, {entries}-entry buffer "
        "(suite average, % of accesses)",
        headers=["policy", "D$ HR", "victim", "prefetch", "exclusion",
                 "total", "miss rate"],
        paper_reference="Figure 7: ~30% total-miss-rate reduction for the "
        "best combined policy over the best single policy",
    )
    miss_rates: dict[str, float] = {}
    for p in policies:
        d = v = pf = ex = 0.0
        for bench in suite:
            s = stats[bench][p.name]
            acc = s.l1.accesses
            d += s.l1.hit_rate
            v += 100.0 * s.buffer.victim_hits / acc if acc else 0.0
            pf += 100.0 * s.buffer.prefetch_hits / acc if acc else 0.0
            ex += 100.0 * s.buffer.exclusion_hits / acc if acc else 0.0
        n = len(suite)
        total = (d + v + pf + ex) / n
        miss_rates[p.name] = 100.0 - total
        result.add_row(
            p.name, d / n, v / n, pf / n, ex / n, total, 100.0 - total
        )

    best_single = min(miss_rates[name] for name in SINGLE_POLICY_NAMES)
    best_combined = min(
        rate for name, rate in miss_rates.items()
        if name not in SINGLE_POLICY_NAMES
    )
    if best_combined > 0:
        result.notes.append(
            "best single policy miss rate / best combined policy miss rate "
            f"= {best_single / best_combined:.2f}x (paper: ~1.4x)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
