"""Shared machinery for the speedup-style experiments (Figs 3-6).

Runs a set of assist policies over the Section-5 suite and tabulates
per-benchmark speedups against a baseline policy, plus the arithmetic
average the paper's bar charts show.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cache.stats import SystemStats
from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.policies import AssistConfig
from repro.system.simulator import mean, simulate, speedup
from repro.workloads.spec_analogs import build


def run_policies_over_suite(
    policies: Sequence[AssistConfig],
    params: ExperimentParams,
    suite: Sequence[str],
    machine: MachineConfig = PAPER_MACHINE,
) -> Dict[str, Dict[str, SystemStats]]:
    """stats[bench][policy_name] for every (benchmark, policy) pair.

    Policy names must be unique — the per-benchmark dict is keyed by
    name, and a duplicate would silently drop one policy's column from
    every table built on top of this.
    """
    names = [p.name for p in policies]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate policy name(s) {', '.join(map(repr, duplicates))}: "
            "results are keyed by name (use AssistConfig.renamed())"
        )
    out: Dict[str, Dict[str, SystemStats]] = {}
    for name in suite:
        trace = build(name, params.n_refs, params.seed)
        out[name] = {
            p.name: simulate(trace, p, machine, warmup=params.warmup)
            for p in policies
        }
    return out


def speedup_table(
    experiment_id: str,
    title: str,
    baseline: AssistConfig,
    policies: Sequence[AssistConfig],
    params: ExperimentParams,
    suite: Sequence[str],
    machine: MachineConfig = PAPER_MACHINE,
    paper_reference: str = "",
) -> ExperimentResult:
    """Per-benchmark speedup of each policy over ``baseline``."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["bench"] + [p.name for p in policies],
        paper_reference=paper_reference,
    )
    # Some figures show the baseline as its own bar (Figure 5's 'no
    # buffer'); don't simulate it a second time when it is already in
    # the policy list — but a *different* config hiding behind the
    # baseline's name would make every speedup wrong, so reject that.
    run_list = list(policies)
    if baseline.name in {p.name for p in run_list}:
        if not any(p == baseline for p in run_list):
            raise ValueError(
                f"policy named {baseline.name!r} differs from the baseline "
                "config of the same name"
            )
    else:
        run_list = [baseline] + run_list
    stats = run_policies_over_suite(run_list, params, suite, machine)
    columns: Dict[str, list[float]] = {p.name: [] for p in policies}
    for bench in suite:
        base = stats[bench][baseline.name]
        cells: list[object] = [bench]
        for p in policies:
            try:
                s = speedup(stats[bench][p.name], base)
            except ValueError as exc:
                # A zero-IPC cell would otherwise abort the whole figure
                # with no clue which (benchmark, policy) produced it.
                raise ValueError(
                    f"speedup of policy {p.name!r} on benchmark {bench!r} "
                    f"is undefined: {exc}"
                ) from exc
            columns[p.name].append(s)
            cells.append(s)
        result.add_row(*cells)
    result.add_row("AVERAGE", *[mean(columns[p.name]) for p in policies])
    return result
