"""Figure 6 — the Adaptive Miss Buffer.

Seven policies (three best-variant singles and four combinations) at two
buffer sizes (8 and 16 entries), speedups over no buffer at all.

Paper headlines: at 8 entries VictPref is the best combination and more
than doubles the gain of any single policy; with 16 entries the
do-everything VicPreExc becomes attractive; the AMB achieves as much as a
16% speedup over any single technique.
"""

from __future__ import annotations

from repro.buffers.amb import figure6_policies
from repro.experiments._speedups import speedup_table
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)
from repro.system.policies import BASELINE


def run(
    params: ExperimentParams = DEFAULT_PARAMS, entries: int = 8
) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    result = speedup_table(
        experiment_id=f"fig6-{entries}",
        title=f"Adaptive Miss Buffer speedups, {entries}-entry buffer (vs no buffer)",
        baseline=BASELINE,
        policies=[p.with_entries(entries) for p in figure6_policies(entries)],
        params=params,
        suite=suite,
        paper_reference="Figure 6: combined policies beat any single policy; "
        "VictPref best at 8 entries",
    )
    return result


def run_both_sizes(
    params: ExperimentParams = DEFAULT_PARAMS,
) -> tuple[ExperimentResult, ExperimentResult]:
    """The full figure: 8-entry and 16-entry tables."""
    return run(params, entries=8), run(params, entries=16)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    for r in run_both_sizes():
        print(format_result(r))
        print()
