"""Experiment framework: parameters, results, and formatting.

Every paper table/figure has a module here exposing
``run(params) -> ExperimentResult``.  Results are plain tabular data so
the same object can be printed by the CLI runner, asserted on by the
benchmark harness, and dumped into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.workloads.spec_analogs import ACCURACY_SUITE, EVAL_SUITE


@dataclass(frozen=True)
class ExperimentParams:
    """Common knobs for all experiments.

    The defaults reproduce the committed EXPERIMENTS.md numbers; the
    benchmark harness uses smaller values via :meth:`quick`.

    ``n_refs``/``warmup`` stand in for the paper's 300M measured
    instructions after a 1B-instruction fast-forward: warmup references
    warm the caches/MCT/buffer, the remainder are measured.
    """

    n_refs: int = 150_000
    warmup: int = 50_000
    seed: int = 0
    suite: Optional[Sequence[str]] = None  # None -> experiment default

    def __post_init__(self) -> None:
        if self.n_refs <= 0:
            raise ValueError("n_refs must be positive")
        if not 0 <= self.warmup < self.n_refs:
            raise ValueError("warmup must be in [0, n_refs)")

    def bench_suite(self, default: Sequence[str]) -> List[str]:
        return list(self.suite) if self.suite is not None else list(default)

    @classmethod
    def quick(cls) -> "ExperimentParams":
        """Small parameters for CI-speed runs."""
        return cls(n_refs=40_000, warmup=12_000)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by the harness checkpoint manifest)."""
        return {
            "n_refs": self.n_refs,
            "warmup": self.warmup,
            "seed": self.seed,
            "suite": list(self.suite) if self.suite is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentParams":
        """Inverse of :meth:`to_dict`; re-runs all parameter validation."""
        suite = payload.get("suite")
        return cls(
            n_refs=int(payload["n_refs"]),  # type: ignore[arg-type]
            warmup=int(payload["warmup"]),  # type: ignore[arg-type]
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            suite=[str(s) for s in suite] if suite is not None else None,  # type: ignore[union-attr]
        )


#: Default params used by the committed results.
DEFAULT_PARAMS = ExperimentParams()

#: Suites re-exported for convenience.
FULL_SUITE = ACCURACY_SUITE
SECTION5_SUITE = EVAL_SUITE


@dataclass
class ExperimentResult:
    """One table of results plus provenance."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: str = ""

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def row_dict(self, key_column: int = 0) -> Dict[object, List[object]]:
        """Rows keyed by one column (for assertions in tests/benches)."""
        return {row[key_column]: row for row in self.rows}

    def column(self, name: str) -> List[object]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def cell(self, row_key: object, column: str, key_column: int = 0) -> object:
        """Single cell by row key and column name."""
        return self.row_dict(key_column)[row_key][self.headers.index(column)]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: every table cell is str/int/float/bool, so the
        round-trip through :meth:`from_dict` is lossless."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "paper_reference": self.paper_reference,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; validates row widths on the way in."""
        result = cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            headers=[str(h) for h in payload["headers"]],  # type: ignore[union-attr]
            notes=[str(n) for n in payload.get("notes", [])],  # type: ignore[union-attr]
            paper_reference=str(payload.get("paper_reference", "")),
        )
        for row in payload.get("rows", []):  # type: ignore[union-attr]
            result.add_row(*row)
        return result


def format_result(result: ExperimentResult) -> str:
    """Render a result as a fixed-width ASCII table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    table = [result.headers] + [[fmt(c) for c in row] for row in result.rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(result.headers))]

    def line(cells: List[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [
        f"== {result.experiment_id}: {result.title} ==",
    ]
    if result.paper_reference:
        out.append(f"   ({result.paper_reference})")
    out.append(line(table[0]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in table[1:])
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)
