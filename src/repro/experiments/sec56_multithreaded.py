"""§5.6 extension experiment — miss classification under cache sharing.

The paper argues (without measuring) that multithreaded caches make every
technique in the paper more valuable, because co-scheduled threads
manufacture conflicts no single program has.  This experiment quantifies
that on our analogs:

* per-pair sharing penalties (shared-mode vs solo miss rates),
* the conflict share of the shared cache's misses,
* how much of the penalty an Adaptive Miss Buffer (VictPref) recovers.

Not a paper figure; included because §5.6 names it the most promising
direction and the machinery is all here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.buffers.amb import vict_pref
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
)
from repro.system.multithreaded import sharing_penalties, simulate_shared
from repro.system.policies import BASELINE
from repro.workloads.spec_analogs import build

#: Default co-run pairs: one conflict-prone, one streaming/irregular each.
DEFAULT_PAIRS: Sequence[Tuple[str, str]] = (
    ("tomcatv", "gcc"),
    ("turb3d", "compress"),
    ("swim", "vortex"),
    ("go", "li"),
)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec56",
        title="Shared-cache co-runs: sharing penalty and AMB recovery",
        headers=[
            "pair",
            "solo miss %",
            "shared miss %",
            "penalty",
            "conflict share %",
            "shared+AMB miss %",
            "AMB recovery %",
        ],
        paper_reference="§5.6: multithreaded caches are conflict-prone and "
        "the paper's techniques 'apply to an even greater extent'",
    )

    warm = params.warmup / params.n_refs
    for a_name, b_name in DEFAULT_PAIRS:
        traces = [build(a_name, params.n_refs, params.seed),
                  build(b_name, params.n_refs, params.seed)]

        penalties = sharing_penalties(
            traces, BASELINE, warmup_fraction=warm
        )
        solo = sum(p.solo_miss_rate for p in penalties) / 2
        shared = sum(p.shared_miss_rate for p in penalties) / 2
        base_run = simulate_shared(traces, BASELINE, warmup_fraction=warm)
        conflict_share = (
            100.0
            * base_run.combined.conflict_misses_predicted
            / max(base_run.combined.l1.misses, 1)
        )

        amb_run = simulate_shared(traces, vict_pref(), warmup_fraction=warm)
        amb_threads = amb_run.threads
        amb_miss = sum(t.miss_rate for t in amb_threads) / 2
        penalty = shared - solo
        recovery = (
            100.0 * (shared - amb_miss) / penalty if penalty > 0 else 0.0
        )
        result.add_row(
            f"{a_name}+{b_name}",
            solo,
            shared,
            penalty,
            conflict_share,
            amb_miss,
            recovery,
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
