"""Section 5.4 — the MCT-biased pseudo-associative cache.

Compares four L1 organisations of equal capacity:

* plain direct-mapped (the other experiments' baseline),
* the baseline pseudo-associative (column-associative) cache with LRU
  choice between the two candidate slots,
* the §5.4 variant biased by conflict bits from the per-slot MCT,
* a true 2-way set-associative cache (same capacity, LRU).

Paper numbers: the MCT variant improves the pseudo-associative cache by
1.5% on average (individual gains to 7%), runs only 0.9% behind a true
2-way cache (tomcatv, turb3d and wave5 beat it), and improves the average
miss rate from 10.22% to 9.83%.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.geometry import CacheGeometry
from repro.cache.pseudo_assoc import PacVariant
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)
from repro.system.config import PAPER_MACHINE, MachineConfig
from repro.system.pac_system import simulate_pac
from repro.system.policies import BASELINE
from repro.system.simulator import simulate, speedup
from repro.workloads.spec_analogs import build


def _two_way_machine(machine: MachineConfig) -> MachineConfig:
    l1 = machine.l1
    return replace(
        machine,
        l1=CacheGeometry(size=l1.size, assoc=2, line_size=l1.line_size),
    )


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    machine = PAPER_MACHINE
    result = ExperimentResult(
        experiment_id="sec54",
        title="Pseudo-associative cache: speedup over direct-mapped, and miss rates",
        headers=[
            "bench",
            "PAC-base",
            "PAC-MCT",
            "2-way",
            "miss DM",
            "miss PAC-base",
            "miss PAC-MCT",
            "miss 2-way",
        ],
        paper_reference="§5.4: MCT bias +1.5% avg (up to 7%); within 0.9% of "
        "2-way; miss rate 10.22% -> 9.83%",
    )

    sums = {"PAC-base": 0.0, "PAC-MCT": 0.0, "2-way": 0.0}
    miss_sums = {"DM": 0.0, "PAC-base": 0.0, "PAC-MCT": 0.0, "2-way": 0.0}
    for bench in suite:
        trace = build(bench, params.n_refs, params.seed)
        dm = simulate(trace, BASELINE, machine, warmup=params.warmup)
        pac_base = simulate_pac(
            trace, PacVariant.CLASSIC, machine, warmup=params.warmup
        )
        pac_mct = simulate_pac(
            trace, PacVariant.MCT, machine, warmup=params.warmup
        )
        two_way = simulate(
            trace, BASELINE, _two_way_machine(machine), warmup=params.warmup
        )
        row = [
            bench,
            speedup(pac_base, dm),
            speedup(pac_mct, dm),
            speedup(two_way, dm),
            dm.l1.miss_rate,
            pac_base.l1.miss_rate,
            pac_mct.l1.miss_rate,
            two_way.l1.miss_rate,
        ]
        result.add_row(*row)
        sums["PAC-base"] += row[1]
        sums["PAC-MCT"] += row[2]
        sums["2-way"] += row[3]
        miss_sums["DM"] += row[4]
        miss_sums["PAC-base"] += row[5]
        miss_sums["PAC-MCT"] += row[6]
        miss_sums["2-way"] += row[7]

    n = len(suite)
    result.add_row(
        "AVERAGE",
        sums["PAC-base"] / n,
        sums["PAC-MCT"] / n,
        sums["2-way"] / n,
        miss_sums["DM"] / n,
        miss_sums["PAC-base"] / n,
        miss_sums["PAC-MCT"] / n,
        miss_sums["2-way"] / n,
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
