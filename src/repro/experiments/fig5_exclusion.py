"""Figure 5 — cache-exclusion policies.

Six bars: no buffer, Johnson & Hwu's MAT, and four MCT-based policies
(conflict, conflict-history, capacity, capacity-history), each routing
excluded lines into a 16-entry bypass buffer.

The paper's finding: simply excluding **capacity** misses — the cheapest
policy, consulting the MCT only on misses — beats both the MAT (which is
read and written on every access) and the more complex history variants,
on both hit rate and performance.
"""

from __future__ import annotations

from repro.buffers.exclusion import figure5_policies, no_exclusion
from repro.experiments._speedups import run_policies_over_suite, speedup_table
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    return speedup_table(
        experiment_id="fig5",
        title="Cache-exclusion policy speedups (vs no buffer)",
        baseline=no_exclusion(),
        policies=figure5_policies(),
        params=params,
        suite=suite,
        paper_reference="Figure 5: plain capacity exclusion beats the MAT "
        "and the history variants",
    )


def run_hit_rates(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Total (L1 + buffer) hit rates per exclusion policy."""
    suite = params.bench_suite(SECTION5_SUITE)
    policies = figure5_policies()
    stats = run_policies_over_suite(policies, params, suite)
    result = ExperimentResult(
        experiment_id="fig5-hr",
        title="Exclusion: total hit rate (L1 + bypass buffer), suite average",
        headers=["policy", "D$ HR", "buffer HR", "total"],
        paper_reference="§5.3: capacity exclusion has the highest overall hit rate",
    )
    for p in policies:
        d = b = 0.0
        for bench in suite:
            s = stats[bench][p.name]
            d += s.l1.hit_rate
            b += s.buffer.hit_rate(s.l1.accesses)
        n = len(suite)
        result.add_row(p.name, d / n, b / n, (d + b) / n)
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
    print()
    print(format_result(run_hit_rates()))
