"""CLI runner: regenerate any paper table/figure.

Usage (installed as ``repro-experiments``)::

    repro-experiments all
    repro-experiments fig1 fig6
    repro-experiments fig4 --refs 200000 --warmup 60000
    repro-experiments table1 --quick

Each experiment prints an ASCII table matching the corresponding table or
figure of the paper; see EXPERIMENTS.md for the committed results and the
paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import (
    assoc_sweep,
    fig1_accuracy,
    fig2_tag_bits,
    fig3_victim,
    fig4_prefetch,
    fig5_exclusion,
    fig6_amb,
    fig7_amb_hits,
    sec54_pseudo,
    sec56_multithreaded,
    table1_victim,
)
from repro.experiments.base import ExperimentParams, ExperimentResult, format_result

RunFn = Callable[[ExperimentParams], List[ExperimentResult]]


def _single(fn: Callable[[ExperimentParams], ExperimentResult]) -> RunFn:
    return lambda params: [fn(params)]


EXPERIMENTS: Dict[str, RunFn] = {
    "fig1": _single(fig1_accuracy.run),
    "fig2": _single(fig2_tag_bits.run),
    "fig3": _single(fig3_victim.run),
    "table1": _single(table1_victim.run),
    "fig4": lambda p: [fig4_prefetch.run_accuracy(p), fig4_prefetch.run_speedup(p)],
    "fig5": lambda p: [fig5_exclusion.run(p), fig5_exclusion.run_hit_rates(p)],
    "sec54": _single(sec54_pseudo.run),
    "fig6": lambda p: list(fig6_amb.run_both_sizes(p)),
    "fig7": lambda p: [fig7_amb_hits.run(p, 8), fig7_amb_hits.run(p, 16)],
    # Extensions beyond the paper's figures (§5.6, measured here):
    "sec56": _single(sec56_multithreaded.run),
    "assoc": _single(assoc_sweep.run),
}


def run_experiments(
    names: List[str], params: ExperimentParams
) -> List[ExperimentResult]:
    results: List[ExperimentResult] = []
    for name in names:
        try:
            fn = EXPERIMENTS[name]
        except KeyError:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(EXPERIMENTS)} or 'all'"
            )
        results.extend(fn(params))
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures from Collins & Tullsen, MICRO 1999.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument("--refs", type=int, default=None, help="trace length")
    parser.add_argument("--warmup", type=int, default=None, help="warmup refs")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--quick", action="store_true", help="small traces for a fast pass"
    )
    parser.add_argument(
        "--chart",
        metavar="COLUMN",
        default=None,
        help="also draw an ASCII bar chart of one result column",
    )
    args = parser.parse_args(argv)

    params = ExperimentParams.quick() if args.quick else ExperimentParams()
    overrides = {}
    if args.refs is not None:
        overrides["n_refs"] = args.refs
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.seed:
        overrides["seed"] = args.seed
    if overrides:
        params = ExperimentParams(
            n_refs=overrides.get("n_refs", params.n_refs),
            warmup=overrides.get("warmup", params.warmup),
            seed=overrides.get("seed", params.seed),
        )

    names = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    for name in names:
        start = time.time()
        for result in run_experiments([name], params):
            print(format_result(result))
            if args.chart:
                from repro.experiments.charts import bar_chart

                try:
                    print()
                    print(bar_chart(result, args.chart))
                except ValueError as exc:
                    print(f"(no chart: {exc})", file=sys.stderr)
            print()
        print(f"[{name}: {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
