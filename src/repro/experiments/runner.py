"""CLI runner: regenerate any paper table/figure, fault-tolerantly.

Usage (installed as ``repro-experiments``)::

    repro-experiments all
    repro-experiments fig1 fig6
    repro-experiments fig4 --refs 200000 --warmup 60000
    repro-experiments table1 --quick
    repro-experiments all --run-dir out/ --timeout 600 --strict
    repro-experiments all --run-dir out/ --resume      # skip finished cells
    repro-experiments --resume out/ all                # same thing
    repro-experiments all --jobs 4                     # 4 cells at a time
    repro-experiments all --run-dir out/ --metrics --trace --heartbeat-every 5000
    repro-experiments all --run-dir out/ --inject checkpoint_write:kill:2
    python -m repro.harness.doctor out/               # then: ... --resume

Every experiment is routed through :mod:`repro.harness`: each
(experiment, variant) *cell* runs in its own worker process with an
optional timeout, failures are retried with exponential backoff, and —
when ``--run-dir`` is given — each completed cell's table is persisted as
a schema-versioned JSON artifact so an interrupted campaign can be
resumed without recomputing anything.  ``--jobs N`` (default: CPU count)
supervises up to N cells concurrently without weakening any of those
guarantees.  A structured per-cell report is printed at the end (and
saved as ``report.json``); ``--strict`` turns any degraded cell into a
non-zero exit for CI.

Each experiment prints an ASCII table matching the corresponding table or
figure of the paper; see EXPERIMENTS.md for the committed results and the
paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import faults
from repro.experiments.base import ExperimentParams, ExperimentResult, format_result
from repro.harness.cells import (
    SHARDED_EXPERIMENTS,
    VARIANTS,
    CellSpec,
    FaultInjection,
    expand_cells,
    known_experiments,
    run_cell,
)
from repro.harness.checkpoint import CheckpointError, RunDirectory
from repro.harness.executor import HarnessConfig, run_cells
from repro.harness.report import CellReport, CellStatus
from repro.obs.config import ObsConfig
from repro.system.simulator import ENGINE_ENV_VAR, validate_engine_env

RunFn = Callable[[ExperimentParams], List[ExperimentResult]]


def _experiment_fn(name: str) -> RunFn:
    def run(params: ExperimentParams) -> List[ExperimentResult]:
        return [fn(params) for fn in VARIANTS[name].values()]

    return run


#: Legacy name -> run-function view of the cell registry (kept for the
#: benchmark harness and direct library use; the CLI goes through cells).
EXPERIMENTS: Dict[str, RunFn] = {
    name: _experiment_fn(name) for name in VARIANTS
}


def run_experiments(
    names: List[str], params: ExperimentParams
) -> List[ExperimentResult]:
    """Run experiments inline (no isolation) and return their tables."""
    results: List[ExperimentResult] = []
    for name in names:
        if name not in VARIANTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(VARIANTS)} or 'all'"
            )
        results.extend(run_cell(spec, params) for spec in expand_cells([name]))
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate tables/figures from Collins & Tullsen, MICRO 1999.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(known_experiments())}) or 'all'",
    )
    parser.add_argument("--refs", type=int, default=None, help="trace length")
    parser.add_argument("--warmup", type=int, default=None, help="warmup refs")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--suite",
        default=None,
        metavar="BENCH[,BENCH...]",
        help="restrict every experiment to these benchmarks",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small traces for a fast pass"
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "scalar", "vector"),
        default=None,
        help="simulation engine: auto (default) picks the vectorised "
        "engine for eligible cells, scalar pins the per-reference "
        "reference loop; both are byte-identical (exported to worker "
        "processes via REPRO_SIM_ENGINE)",
    )
    parser.add_argument(
        "--chart",
        metavar="COLUMN",
        default=None,
        help="also draw an ASCII bar chart of one result column",
    )
    harness = parser.add_argument_group("harness (fault tolerance)")
    harness.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="supervise up to N cells concurrently "
        "(default: CPU count; forced to 1 by --no-isolate)",
    )
    harness.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist per-cell JSON artifacts and report.json here",
    )
    harness.add_argument(
        "--resume",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help="skip cells already checkpointed in DIR (defaults to --run-dir)",
    )
    harness.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill any cell attempt that runs longer than this",
    )
    harness.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failed/timed-out cell (default 1)",
    )
    harness.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base retry backoff; doubles per attempt, with jitter",
    )
    harness.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any cell ends FAILED or TIMEOUT",
    )
    harness.add_argument(
        "--no-isolate",
        action="store_true",
        help="run cells in-process (no crash/hang protection; debugging)",
    )
    harness.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip statistics conservation-law checks after each simulation",
    )
    harness.add_argument(
        "--inject-fault",
        default=None,
        help=argparse.SUPPRESS,  # <cell_id>:<fail|hang|flaky[:N]> (testing)
    )
    harness.add_argument(
        "--breaker",
        type=int,
        default=5,
        metavar="K",
        help="abort cleanly after K consecutive infrastructure failures "
        "(spawn/worker-loss/checkpoint-IO; 0 disables; default 5)",
    )
    faults_group = parser.add_argument_group(
        "fault injection (crash-consistency testing; off by default)"
    )
    faults_group.add_argument(
        "--inject",
        default=None,
        metavar="SITE:KIND[:SEED[:REPEAT]][,...]",
        help="arm deterministic fault(s) at named injection sites "
        f"(sites: {', '.join(sorted(faults.SITES))}; kinds: "
        f"{', '.join(faults.FAULT_KINDS)}); the REPRO_INJECT environment "
        "variable is read when this flag is absent",
    )
    obs = parser.add_argument_group("observability (off by default)")
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="write schema-versioned metrics events to RUN_DIR/events.jsonl "
        "(requires --run-dir)",
    )
    obs.add_argument(
        "--trace",
        action="store_true",
        help="record tracing spans per cell attempt/retry/checkpoint into "
        "report.json (and events.jsonl when --metrics is also on)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each cell attempt into RUN_DIR/profiles/*.prof "
        "(requires --run-dir)",
    )
    obs.add_argument(
        "--heartbeat-every",
        type=int,
        default=0,
        metavar="N",
        help="emit a simulation heartbeat event every N measured references "
        "(requires --metrics; 0 disables heartbeats)",
    )
    return parser


def _validate_names(
    parser: argparse.ArgumentParser, requested: List[str]
) -> List[str]:
    """Expand 'all' and reject unknown names before anything runs."""
    if "all" in requested:
        # Sharded sweep families re-cut an aggregated experiment; 'all'
        # runs the aggregated form only (both would compute the grid twice).
        return [n for n in known_experiments() if n not in SHARDED_EXPERIMENTS]
    unknown = [name for name in requested if name not in VARIANTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(repr(n) for n in unknown)}; "
            f"valid names: {', '.join(known_experiments())} (or 'all')"
        )
    return list(requested)


def _validate_params(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> ExperimentParams:
    """Build the full ExperimentParams up front so a bad --refs/--warmup
    combination fails immediately, not halfway through a campaign."""
    base = ExperimentParams.quick() if args.quick else ExperimentParams()
    suite: Optional[List[str]] = None
    if args.suite is not None:
        from repro.workloads.spec_analogs import SUITE

        suite = [s.strip() for s in args.suite.split(",") if s.strip()]
        bad = [s for s in suite if s not in SUITE]
        if bad or not suite:
            parser.error(
                f"unknown benchmark(s) {', '.join(repr(b) for b in bad) or '(none)'}"
                f"; valid: {', '.join(sorted(SUITE))}"
            )
    try:
        return ExperimentParams(
            n_refs=args.refs if args.refs is not None else base.n_refs,
            warmup=args.warmup if args.warmup is not None else base.warmup,
            seed=args.seed,
            suite=suite,
        )
    except ValueError as exc:
        parser.error(f"invalid parameters: {exc}")
        raise AssertionError("unreachable")  # pragma: no cover


def _make_cell_printer(chart: Optional[str]) -> Callable:
    def on_cell(
        spec: CellSpec, cell: CellReport, result: Optional[ExperimentResult]
    ) -> None:
        if result is not None:
            print(format_result(result))
            if chart:
                from repro.experiments.charts import bar_chart

                try:
                    print()
                    print(bar_chart(result, chart))
                except ValueError as exc:
                    print(f"(no chart: {exc})", file=sys.stderr)
            print()
        suffix = ""
        if cell.status is CellStatus.SKIPPED:
            suffix = " (cached)"
        elif cell.status is CellStatus.RETRIED:
            suffix = f" (after {cell.attempts} attempts)"
        print(
            f"[{spec.cell_id}: {cell.status.value.lower()}"
            f" {cell.duration_s:.1f}s{suffix}]",
            file=sys.stderr,
        )
        if cell.error:
            tail = cell.error.strip().splitlines()[-1]
            print(f"[{spec.cell_id}: {tail}]", file=sys.stderr)

    return on_cell


def main(argv: List[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    names = _validate_names(parser, args.experiments)
    params = _validate_params(parser, args)
    cells = expand_cells(names)

    inject = None
    if args.inject_fault:
        try:
            inject = FaultInjection.parse(args.inject_fault)
        except ValueError as exc:
            parser.error(str(exc))

    # Arm the seeded fault plan before anything durable happens, so the
    # manifest write in prepare() is already inside the fault model.
    plan_text = args.inject or os.environ.get("REPRO_INJECT")
    if plan_text:
        try:
            faults.activate(faults.parse_plan(plan_text))
        except ValueError as exc:
            parser.error(str(exc))

    # Worker cells run in separate processes, so the engine choice rides
    # along in the environment rather than through CellSpec plumbing;
    # simulate(engine="auto") reads it back at dispatch time.  Validate
    # the variable up front either way: a typo in an inherited
    # REPRO_SIM_ENGINE must abort here, not once per cell in workers.
    if args.engine is not None:
        os.environ[ENGINE_ENV_VAR] = args.engine
    try:
        validate_engine_env()
    except ValueError as exc:
        parser.error(str(exc))

    resume = args.resume is not None
    run_dir_path = args.resume if isinstance(args.resume, str) else args.run_dir
    if resume and run_dir_path is None:
        parser.error("--resume needs a run directory (pass --run-dir or --resume DIR)")

    run_dir: Optional[RunDirectory] = None
    if run_dir_path is not None:
        run_dir = RunDirectory(run_dir_path)
        try:
            run_dir.prepare(
                params, resume=resume, cells=[c.cell_id for c in cells]
            )
        except CheckpointError as exc:
            parser.error(str(exc))

    if args.metrics and run_dir is None:
        parser.error("--metrics needs --run-dir (events.jsonl lives there)")
    if args.profile and run_dir is None:
        parser.error("--profile needs --run-dir (profiles/ lives there)")
    if args.heartbeat_every and not args.metrics:
        parser.error("--heartbeat-every needs --metrics (heartbeats are events)")
    if args.heartbeat_every < 0:
        parser.error("--heartbeat-every must be >= 0")

    obs_config = None
    if args.metrics or args.trace or args.profile:
        events_path = None
        if args.metrics:
            events_path = str(run_dir.path / "events.jsonl")
            if not resume:
                # A fresh (non-resume) run starts a fresh event stream;
                # a resumed run appends so the log covers the whole campaign.
                try:
                    os.unlink(events_path)
                except FileNotFoundError:
                    pass
        obs_config = ObsConfig(
            events_path=events_path,
            trace=args.trace,
            profile_dir=str(run_dir.path / "profiles") if args.profile else None,
            heartbeat_every=args.heartbeat_every,
        )

    jobs = args.jobs
    if jobs is None:
        # Parallel dispatch needs isolated workers, so --no-isolate runs
        # stay serial unless the user explicitly (and fatally) asks.
        jobs = 1 if args.no_isolate else (os.cpu_count() or 1)
    try:
        config = HarnessConfig(
            timeout_s=args.timeout,
            retries=args.retries,
            backoff_s=args.backoff,
            isolate=not args.no_isolate,
            check_invariants=not args.no_invariants,
            strict=args.strict,
            jobs=jobs,
            breaker_threshold=args.breaker,
        )
    except ValueError as exc:
        parser.error(f"invalid harness options: {exc}")

    report = run_cells(
        cells,
        params,
        config,
        run_dir=run_dir,
        resume=resume,
        inject=inject,
        on_cell=_make_cell_printer(args.chart),
        obs_config=obs_config,
    )

    print(report.format_table())
    if run_dir is not None:
        print(f"[report saved to {run_dir.report_path}]", file=sys.stderr)
        if obs_config is not None and obs_config.metrics:
            print(f"[metrics events in {obs_config.events_path}]", file=sys.stderr)
    return report.exit_code(args.strict)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
