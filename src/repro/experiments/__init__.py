"""One module per paper table/figure, plus the CLI runner.

====================  =============================================
module                paper result
====================  =============================================
fig1_accuracy         Figure 1 — classification accuracy, 4 caches
fig2_tag_bits         Figure 2 — accuracy vs stored tag bits
fig3_victim           Figure 3 — victim-cache policy speedups
table1_victim         Table 1 — victim hit rates and swap/fill traffic
fig4_prefetch         Figure 4 — prefetch filtering (accuracy, speedup)
fig5_exclusion        Figure 5 — exclusion policies vs the MAT
sec54_pseudo          §5.4 — MCT-biased pseudo-associative cache
fig6_amb              Figure 6 — Adaptive Miss Buffer speedups
fig7_amb_hits         Figure 7 — AMB hit-rate components
sec56_multithreaded   §5.6 extension — shared-cache co-runs (measured)
assoc_sweep           §5.6 extension — associativity sweep (measured)
mrc_curves            subsystem figure — MRC with conflict-share band
====================  =============================================
"""

from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    format_result,
)

__all__ = [
    "DEFAULT_PARAMS",
    "ExperimentParams",
    "ExperimentResult",
    "format_result",
]
