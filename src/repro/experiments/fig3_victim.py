"""Figure 3 — victim-cache policies with conflict classification.

Four bars: a traditional victim cache, no-swap-on-conflict, no-fill-on-
capacity, and both filters combined (all with the or-conflict filter).
The paper reports ≈3% average speedup for the combined policy over the
traditional victim cache, earned by pressure relief (fewer swaps and
fills) rather than hit rate.

Speedups here are shown against the *no-victim-cache* baseline so both
the victim cache's own benefit and the filters' increment are visible;
the filters' increment over the traditional victim cache is appended as
an extra row.
"""

from __future__ import annotations

from dataclasses import replace

from repro.buffers.victim import figure3_policies, no_victim_cache, traditional
from repro.experiments._speedups import speedup_table
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    result = speedup_table(
        experiment_id="fig3",
        title="Victim-cache policy speedups (vs no victim cache)",
        baseline=no_victim_cache(),
        policies=figure3_policies(),
        params=params,
        suite=suite,
        paper_reference="Figure 3: combined filters ~3% over traditional victim cache",
    )
    # The paper's headline compares filtered policies against the
    # traditional victim cache; derive that from the AVERAGE row.
    avg = result.row_dict()["AVERAGE"]
    trad = avg[result.headers.index(traditional().name)]
    rel: list[object] = ["vs V cache"]
    for name in result.headers[1:]:
        rel.append(float(avg[result.headers.index(name)]) / float(trad))
    result.rows.append(rel)
    result.notes.append(
        "'vs V cache' row: average speedup renormalised to the traditional "
        "victim cache (the paper's ~1.03 for the combined policy)."
    )
    return result


def run_shard(params: ExperimentParams, bench: str) -> ExperimentResult:
    """One benchmark's slice of the Figure-3 (benchmark × policy) grid.

    The ``fig3sweep`` cell family exposes the grid to the harness one
    benchmark per cell, so ``--jobs N`` can spread the sweep over cores
    (and a crash or timeout costs one benchmark, not the whole figure).
    The ``--suite`` restriction is superseded by the shard's own
    benchmark.  Each shard's table carries the same columns as the
    aggregated ``fig3`` table; its AVERAGE row degenerates to the single
    benchmark.
    """
    result = run(replace(params, suite=[bench]))
    result.experiment_id = f"fig3[{bench}]"
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
