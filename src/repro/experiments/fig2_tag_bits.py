"""Figure 2 — accuracy versus the number of stored tag bits.

Section 3: "Figure 2 shows the impact of saving only the lower bits of the
evicted tag.  This shows that very little accuracy is lost with only 8
bits stored... With fewer bits stored, more misses are classified as
conflict misses, which is why conflict accuracy starts out artificially
high and capacity accuracy starts low.  This graph shows that even a
single bit per cache set could be effective."

The sweep runs on the 16KB direct-mapped cache and reports the
suite-average conflict and capacity accuracy per stored-tag width.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    FULL_SUITE,
)
from repro.workloads.spec_analogs import build

#: The x-axis of Figure 2 (None = full tag).
FIG2_BIT_WIDTHS: Sequence[Optional[int]] = (1, 2, 3, 4, 6, 8, 10, 12, 16, None)

FIG2_GEOMETRY = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(FULL_SUITE)
    result = ExperimentResult(
        experiment_id="fig2",
        title="Accuracy vs stored tag bits (16KB DM, suite average)",
        headers=["tag bits", "conflict acc %", "capacity acc %", "overall acc %"],
        paper_reference="Figure 2: ~8 bits retains nearly full accuracy; "
        "fewer bits bias toward conflict",
    )

    traces = {name: build(name, params.n_refs, params.seed) for name in suite}
    for bits in FIG2_BIT_WIDTHS:
        cf_ok = cf_all = cp_ok = cp_all = 0
        for trace in traces.values():
            acc = measure_accuracy(trace.addresses, FIG2_GEOMETRY, tag_bits=bits)
            c = acc.classification
            cf_ok += c.conflict_as_conflict
            cf_all += c.true_conflicts
            cp_ok += c.capacity_as_capacity
            cp_all += c.true_capacities
        conflict = 100.0 * cf_ok / cf_all if cf_all else 0.0
        capacity = 100.0 * cp_ok / cp_all if cp_all else 0.0
        overall = (
            100.0 * (cf_ok + cp_ok) / (cf_all + cp_all) if cf_all + cp_all else 0.0
        )
        result.add_row("full" if bits is None else bits, conflict, capacity, overall)
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
