"""Figure 1 — MCT classification accuracy across cache configurations.

The paper reports, for each benchmark and for four caches (16KB DM,
16KB 2-way, 64KB DM, 64KB 2-way), the percentage of true conflict misses
the MCT labels conflict and the percentage of true capacity (incl.
compulsory) misses it labels capacity.  Headline: 88%/86% on the 16KB DM
cache, 91%/92% on the 64KB DM cache, "correctly identifies 87% of misses
in the worst case".

Accuracy runs start cold and store the full tag, exactly as in Section 3.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    FULL_SUITE,
)
from repro.workloads.spec_analogs import build

#: The four bars of Figure 1, left to right.
FIG1_CONFIGS = (
    CacheGeometry(size=16 * 1024, assoc=1, line_size=64),
    CacheGeometry(size=16 * 1024, assoc=2, line_size=64),
    CacheGeometry(size=64 * 1024, assoc=1, line_size=64),
    CacheGeometry(size=64 * 1024, assoc=2, line_size=64),
)


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    """Per-benchmark and average accuracies for the four configurations."""
    suite = params.bench_suite(FULL_SUITE)
    result = ExperimentResult(
        experiment_id="fig1",
        title="Miss-classification accuracy (conflict% / capacity%)",
        headers=["bench"]
        + [f"{g.describe().split(',')[0]} {kind}"
           for g in FIG1_CONFIGS for kind in ("conf", "cap")],
        paper_reference="Figure 1: ~88/86 (16KB DM), ~91/92 (64KB DM)",
    )

    # Aggregate true-positive counts for a miss-weighted average.
    agg = [[0, 0, 0, 0] for _ in FIG1_CONFIGS]  # cf_ok, cf_all, cp_ok, cp_all
    for name in suite:
        trace = build(name, params.n_refs, params.seed)
        cells: list[object] = [name]
        for i, geometry in enumerate(FIG1_CONFIGS):
            acc = measure_accuracy(trace.addresses, geometry)
            cells.extend([acc.conflict_accuracy, acc.capacity_accuracy])
            c = acc.classification
            agg[i][0] += c.conflict_as_conflict
            agg[i][1] += c.true_conflicts
            agg[i][2] += c.capacity_as_capacity
            agg[i][3] += c.true_capacities
        result.add_row(*cells)

    avg: list[object] = ["AVERAGE"]
    for cf_ok, cf_all, cp_ok, cp_all in agg:
        avg.append(100.0 * cf_ok / cf_all if cf_all else 0.0)
        avg.append(100.0 * cp_ok / cp_all if cp_all else 0.0)
    result.add_row(*avg)
    result.notes.append(
        "AVERAGE is miss-weighted across the suite; compulsory misses count "
        "as capacity, matching the paper's grouping."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.base import format_result

    print(format_result(run()))
