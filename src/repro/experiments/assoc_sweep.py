"""§5.6 extension experiment — associativity sweep.

"Many real workloads will still experience conflict misses with 4-way or
higher-associative caches ... the cache may benefit from using miss
classification as part of the cache line replacement algorithm."

For associativities 1/2/4/8 at the paper's 16KB capacity, this experiment
reports the suite's true conflict share, MCT accuracy, and the miss-rate
effect of the conflict-bit-biased replacement policy of
:mod:`repro.extensions.assoc_replacement`.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.experiments.base import (
    DEFAULT_PARAMS,
    ExperimentParams,
    ExperimentResult,
    SECTION5_SUITE,
)
from repro.extensions.assoc_replacement import compare_assoc_replacement
from repro.mrc.oracle import SharedGroundTruth
from repro.workloads.spec_analogs import build

ASSOCIATIVITIES = (1, 2, 4, 8)

#: Capacity shared by every geometry in the sweep.
CAPACITY_BYTES = 16 * 1024
LINE_SIZE = 64


def run(params: ExperimentParams = DEFAULT_PARAMS) -> ExperimentResult:
    suite = params.bench_suite(SECTION5_SUITE)
    result = ExperimentResult(
        experiment_id="assoc",
        title="Associativity sweep: conflict share, MCT accuracy, biased "
        "replacement (16KB, suite average)",
        headers=[
            "assoc",
            "miss rate %",
            "conflict share %",
            "conf acc %",
            "cap acc %",
            "LRU miss %",
            "biased miss %",
        ],
        paper_reference="§5.6: conflict misses persist at higher "
        "associativity; bias replacement against capacity-miss lines",
    )

    traces = {name: build(name, params.n_refs, params.seed) for name in suite}
    # Hill's ground truth depends only on capacity, which the whole
    # sweep shares — one stack pass per trace prices the FA model for
    # all four associativities instead of re-simulating it per cell.
    shared = {
        name: SharedGroundTruth(trace.addresses, LINE_SIZE)
        for name, trace in traces.items()
    }
    capacity_lines = CAPACITY_BYTES // LINE_SIZE
    for assoc in ASSOCIATIVITIES:
        geometry = CacheGeometry(
            size=CAPACITY_BYTES, assoc=assoc, line_size=LINE_SIZE
        )
        miss = share = lru = biased = 0.0
        cf_ok = cf_all = cp_ok = cp_all = 0
        for name, trace in traces.items():
            acc = measure_accuracy(
                trace.addresses,
                geometry,
                oracle=shared[name].oracle(capacity_lines),
            )
            miss += acc.miss_rate
            share += acc.conflict_fraction
            c = acc.classification
            cf_ok += c.conflict_as_conflict
            cf_all += c.true_conflicts
            cp_ok += c.capacity_as_capacity
            cp_all += c.true_capacities
            cmp = compare_assoc_replacement(trace, geometry)
            lru += cmp.lru_miss_rate
            biased += cmp.biased_miss_rate
        n = len(traces)
        result.add_row(
            assoc,
            miss / n,
            share / n,
            100.0 * cf_ok / cf_all if cf_all else 0.0,
            100.0 * cp_ok / cp_all if cp_all else 0.0,
            lru / n,
            biased / n,
        )
    result.notes.append(
        "'LRU miss %' and 'biased miss %' come from the standalone "
        "replacement comparison (no assist buffer); at assoc 1 the bias "
        "has no choices to make, so the columns coincide."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.base import format_result

    print(format_result(run()))
