"""ASCII bar charts for experiment results.

The paper's figures are bar charts; ``repro-experiments`` prints tables.
This module renders an :class:`~repro.experiments.base.ExperimentResult`
column as horizontal bars so the figure's shape is visible in a terminal
(`--chart` on the CLI, or :func:`bar_chart` programmatically).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult


def bar_chart(
    result: ExperimentResult,
    column: str,
    *,
    width: int = 48,
    baseline: Optional[float] = None,
    label_column: int = 0,
) -> str:
    """Render one numeric column of a result as horizontal ASCII bars.

    Parameters
    ----------
    result:
        The experiment result to draw.
    column:
        Header of the numeric column to plot.
    width:
        Maximum bar width in characters.
    baseline:
        When given (e.g. ``1.0`` for speedups), bars start at the baseline
        and extend right for values above it / are marked for values
        below, which makes speedup charts readable.
    label_column:
        Which column supplies row labels (default: the first).
    """
    idx = result.headers.index(column)
    rows = [
        (str(row[label_column]), float(row[idx]))
        for row in result.rows
        if isinstance(row[idx], (int, float))
    ]
    if not rows:
        raise ValueError(f"column {column!r} has no numeric values")

    label_w = max(len(label) for label, _ in rows)
    values = [v for _, v in rows]
    lines = [f"{result.experiment_id}: {column}"]

    if baseline is None:
        top = max(values) or 1.0
        for label, v in rows:
            bar = "#" * max(1, round(width * v / top)) if v > 0 else ""
            lines.append(f"{label.rjust(label_w)} |{bar} {v:.2f}")
    else:
        spread = max(abs(v - baseline) for v in values) or 1.0
        for label, v in rows:
            n = round(width * abs(v - baseline) / spread)
            if v >= baseline:
                bar = "#" * n
                lines.append(f"{label.rjust(label_w)} |{bar} {v:.3f}")
            else:
                bar = "-" * n
                lines.append(f"{label.rjust(label_w)} |{bar} {v:.3f} (below)")
    return "\n".join(lines)


def grouped_chart(result: ExperimentResult, *, width: int = 40) -> str:
    """Render every numeric column of a result, one block per column."""
    numeric = [
        h
        for i, h in enumerate(result.headers[1:], start=1)
        if any(isinstance(row[i], (int, float)) for row in result.rows)
    ]
    return "\n\n".join(bar_chart(result, col, width=width) for col in numeric)
