"""Thin shim so `pip install -e .` works without the `wheel` package.

All metadata lives in pyproject.toml; this file only gives pip a legacy
editable-install path in offline environments that lack bdist_wheel.
"""

from setuptools import setup

setup()
