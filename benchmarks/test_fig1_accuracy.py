"""Benchmark: Figure 1 — classification accuracy, four cache configs.

Paper: ~88%/86% conflict/capacity accuracy on 16KB DM, ~91%/92% on 64KB
DM; "correctly identifies 87% of misses in the worst case" (we hold the
shape: every configuration classifies both kinds well above 75%).
"""

from conftest import run_once

from repro.experiments import fig1_accuracy


def test_fig1_accuracy(benchmark, acc_params):
    result = run_once(benchmark, fig1_accuracy.run, acc_params)
    avg = result.row_dict()["AVERAGE"]
    # Columns: (16KB DM, 16KB 2w, 64KB DM, 64KB 2w) x (conflict, capacity).
    accuracies = [float(v) for v in avg[1:]]
    dm_cols = accuracies[0:2] + accuracies[4:6]
    w2_cols = accuracies[2:4] + accuracies[6:8]
    # Direct-mapped configurations match the paper closely on both kinds.
    assert all(a > 80.0 for a in dm_cols), dm_cols
    # 2-way capacity accuracy is excellent; 2-way conflict accuracy is the
    # documented deviation (synthetic analogs under-supply MCT-visible
    # three-way contention) — still far above chance.
    assert w2_cols[1] > 85.0 and w2_cols[3] > 85.0
    assert w2_cols[0] > 50.0 and w2_cols[2] > 45.0
    # Abstract's headline: overall accuracy per config stays high.
    assert 80.0 < sum(accuracies) / len(accuracies) < 99.0
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
