"""Benchmarks for the §5.6 extension experiments.

Not paper figures — the paper sketches these applications without
numbers — but each run checks the direction §5.6 predicts.
"""

from conftest import BENCH_PARAMS, run_once

from repro.cache.geometry import CacheGeometry
from repro.extensions import (
    CoScheduleAdvisor,
    RemapPolicy,
    compare_assoc_replacement,
    simulate_remap,
)
from repro.workloads.spec_analogs import build
from repro.workloads.trace import Trace

GEO_DM = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
GEO_4W = CacheGeometry(size=16 * 1024, assoc=4, line_size=64)
N = BENCH_PARAMS.n_refs


def test_biased_replacement_4way(benchmark):
    """§5.6: conflict-bit bias in a 4-way cache's replacement must never
    lose much and should help on conflict-rich workloads."""

    def run():
        return {
            name: compare_assoc_replacement(build(name, N), GEO_4W)
            for name in ("tomcatv", "turb3d", "gcc", "compress")
        }

    results = run_once(benchmark, run)
    for name, res in results.items():
        assert res.biased_miss_rate < res.lru_miss_rate + 0.5, name
    print()
    for name, res in results.items():
        print(f"{name:<9} LRU {res.lru_miss_rate:5.2f}%  "
              f"biased {res.biased_miss_rate:5.2f}%")


def test_conflict_filtered_page_remapping(benchmark):
    """§5.6: counting only conflict misses finds real page aliases while
    avoiding useless remaps of streaming pages."""

    def run():
        a, b = 0x100000, 0x100000 + GEO_DM.size
        stream = 0x800000
        addrs = []
        for i in range(N // 3):
            off = (i % 64) * 64
            addrs += [a + off, b + off, stream + i * 64]
        trace = Trace(addrs, name="alias+stream")
        return {
            policy.value: simulate_remap(trace, GEO_DM, policy)
            for policy in RemapPolicy
        }

    out = run_once(benchmark, run)
    assert out["conflict-only"].miss_rate < out["none"].miss_rate
    assert out["conflict-only"].remaps < out["all-misses"].remaps
    print()
    for name, stats in out.items():
        print(f"{name:<14} miss {stats.miss_rate:5.1f}%  remaps {stats.remaps}")


def test_coscheduling_advisor(benchmark):
    """§5.6: the recommended schedule's total conflict-miss rate must not
    exceed the worst pairing's."""

    names = ("go", "li", "gcc", "compress")

    def run():
        adv = CoScheduleAdvisor(GEO_DM)
        adv.measure_all([build(n, N // 2) for n in names])
        schedule = adv.recommend(names)
        chosen = sum(adv.report_for(*p).conflict_miss_rate for p in schedule)
        all_pairs = sorted(
            adv.report_for(a, b).conflict_miss_rate
            for a, b in (("go", "li"), ("go", "gcc"), ("go", "compress"),
                         ("li", "gcc"), ("li", "compress"), ("gcc", "compress"))
        )
        worst = all_pairs[-1] + all_pairs[-2]
        return schedule, chosen, worst

    schedule, chosen, worst = run_once(benchmark, run)
    assert chosen <= worst
    print(f"\nschedule {schedule}: conflict rate {chosen:.2f} "
          f"(worst pairing {worst:.2f})")
