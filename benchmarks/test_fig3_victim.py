"""Benchmark: Figure 3 — victim-cache policies with conflict filtering.

Paper: ~3% average speedup for the combined (filter both) policy over the
traditional victim cache, earned from traffic relief.
"""

from conftest import run_once

from repro.experiments import fig3_victim


def test_fig3_victim(benchmark, params):
    result = run_once(benchmark, fig3_victim.run, params)
    rel = result.row_dict()["vs V cache"]
    get = lambda name: float(rel[result.headers.index(name)])

    # Every filtered policy at least matches the traditional victim cache…
    assert get("filter both") >= 1.0
    assert get("filter fills") >= 1.0
    # …and the best filtered variant lands in the paper's a-few-percent band.
    best = max(get("filter swaps"), get("filter fills"), get("filter both"))
    assert 1.0 <= best < 1.15
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
