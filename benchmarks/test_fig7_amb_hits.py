"""Benchmark: Figure 7 — AMB hit-rate components.

Paper: the AMB derives its benefit from covering each miss type with the
right role — "on average a factor of 1.4 improvement (30% reduction) in
total miss rate is achieved over the best individual policy".
"""

from conftest import run_once

from repro.buffers.amb import COMBINED_POLICY_NAMES, SINGLE_POLICY_NAMES
from repro.experiments import fig7_amb_hits


def test_fig7_components(benchmark, params):
    result = run_once(benchmark, fig7_amb_hits.run, params, 8)
    rows = result.row_dict()
    col = result.headers.index

    # Roles obey the policies: singles use exactly one role.
    assert float(rows["Vict"][col("prefetch")]) == 0.0
    assert float(rows["Vict"][col("exclusion")]) == 0.0
    assert float(rows["Pref"][col("victim")]) == 0.0
    assert float(rows["Excl"][col("victim")]) == 0.0

    # Combined policies use at least two roles at once.
    vp = rows["VictPref"]
    assert float(vp[col("victim")]) > 0 and float(vp[col("prefetch")]) > 0
    vpe = rows["VicPreExc"]
    assert sum(
        float(vpe[col(role)]) > 0 for role in ("victim", "prefetch", "exclusion")
    ) >= 3

    # The best combined policy cuts the residual miss rate versus the
    # best single policy (paper: ~1.4x / 30%).
    miss = col("miss rate")
    best_single = min(float(rows[n][miss]) for n in SINGLE_POLICY_NAMES)
    best_combined = min(float(rows[n][miss]) for n in COMBINED_POLICY_NAMES)
    assert best_combined < best_single
    assert best_single / best_combined > 1.1
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
