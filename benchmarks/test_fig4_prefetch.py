"""Benchmark: Figure 4 — next-line prefetch filtering.

Paper: filtering conflict misses out of the prefetch stream raises
prefetch accuracy by about 25% (we reproduce a substantially larger gain:
the analogs' conflict misses are fully non-sequential); the or-conflict
filter is the most discriminating; slow-bus speedups change little and
the unfiltered prefetcher is the worst of the five.
"""

from conftest import run_once

from repro.experiments import fig4_prefetch


def test_fig4a_accuracy(benchmark, params):
    result = run_once(benchmark, fig4_prefetch.run_accuracy, params)
    rows = result.row_dict()
    acc = result.headers.index("accuracy %")
    issued = result.headers.index("issued")

    unfiltered = float(rows["next-line"][acc])
    or_f = float(rows["filter or-conflict"][acc])
    # Filtering raises accuracy substantially (paper: ~25% relative).
    assert or_f > unfiltered * 1.2
    # The or-conflict filter issues the fewest prefetches of all five.
    assert rows["filter or-conflict"][issued] == min(
        r[issued] for r in result.rows
    )
    # Coverage is not destroyed: the filtered prefetcher still uses a
    # large share of what the unfiltered one used.
    used = result.headers.index("used")
    assert rows["filter or-conflict"][used] > 0.6 * rows["next-line"][used]
    print()
    from repro.experiments.base import format_result

    print(format_result(result))


def test_fig4b_speedup_slow_bus(benchmark, params):
    result = run_once(benchmark, fig4_prefetch.run_speedup, params)
    avg = result.row_dict()["AVERAGE"]
    get = lambda name: float(avg[result.headers.index(name)])
    speedups = {n: get(n) for n in result.headers[1:]}
    # "Even under those conditions the performance advantage is not
    # significant": everything lands close to 1.0 …
    assert all(0.85 < v < 1.2 for v in speedups.values()), speedups
    # … and on the bandwidth-starved bus the filtered prefetchers do not
    # lose to the unfiltered one.
    assert max(speedups.values()) >= speedups["next-line"]
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
