"""Benchmark: §5.4 — the MCT-biased pseudo-associative cache.

Paper: the MCT bias improves the pseudo-associative cache by 1.5% on
average (individual gains to 7%), lands within 0.9% of a true 2-way
cache, and improves the average miss rate (10.22% -> 9.83% there).
"""

from conftest import run_once

from repro.experiments import sec54_pseudo


def test_sec54_pseudo(benchmark, params):
    result = run_once(benchmark, sec54_pseudo.run, params)
    avg = result.row_dict()["AVERAGE"]
    col = result.headers.index

    base_sp = float(avg[col("PAC-base")])
    mct_sp = float(avg[col("PAC-MCT")])
    w2_sp = float(avg[col("2-way")])
    miss_base = float(avg[col("miss PAC-base")])
    miss_mct = float(avg[col("miss PAC-MCT")])
    miss_2w = float(avg[col("miss 2-way")])

    # The MCT bias improves the base pseudo-associative cache …
    assert mct_sp >= base_sp
    assert miss_mct < miss_base
    # … and lands close to a true 2-way cache (paper: within 0.9%).
    assert abs(mct_sp - w2_sp) < 0.02
    assert miss_mct - miss_2w < 1.0
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
