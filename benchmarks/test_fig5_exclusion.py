"""Benchmark: Figure 5 — cache-exclusion policies vs the MAT.

Paper: "Simply excluding capacity misses provided the best performance,
both outperforming the MAT scheme and our simpler variants of the MAT
scheme", with both a higher overall hit rate and higher performance;
the conflict-exclusion variants do poorly.
"""

from conftest import run_once

from repro.experiments import fig5_exclusion


def test_fig5_speedups(benchmark, params):
    result = run_once(benchmark, fig5_exclusion.run, params)
    avg = result.row_dict()["AVERAGE"]
    get = lambda name: float(avg[result.headers.index(name)])

    # Capacity exclusion beats the MAT and every other variant.
    assert get("capacity") >= get("mat")
    assert get("capacity") >= get("capacity-history")
    assert get("capacity") >= get("conflict")
    assert get("capacity") >= get("conflict-history")
    # Conflict-based exclusion is the wrong policy (paper: capacity
    # misses are the bypass candidates).
    assert get("conflict") < get("capacity")
    print()
    from repro.experiments.base import format_result

    print(format_result(result))


def test_fig5_hit_rates(benchmark, params):
    result = run_once(benchmark, fig5_exclusion.run_hit_rates, params)
    d = result.row_dict()
    total = result.headers.index("total")
    # Capacity exclusion achieves the highest combined hit rate.
    assert float(d["capacity"][total]) == max(
        float(row[total]) for row in result.rows
    )
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
