"""Benchmark: Figure 2 — accuracy versus stored tag bits (16KB DM).

Paper: ~8 bits retains nearly the full-tag accuracy; with very few bits
conflict accuracy starts artificially high and capacity accuracy low.
"""

from conftest import run_once

from repro.experiments import fig2_tag_bits


def test_fig2_tag_bits(benchmark, acc_params):
    result = run_once(benchmark, fig2_tag_bits.run, acc_params)
    rows = result.row_dict()

    # 8 bits is within 2 points of the full tag on both axes.
    for col in ("conflict acc %", "capacity acc %"):
        idx = result.headers.index(col)
        assert abs(float(rows[8][idx]) - float(rows["full"][idx])) < 2.0

    # One bit: conflict-biased (high conflict acc, low capacity acc).
    assert rows[1][1] >= rows["full"][1]
    assert rows[1][2] < rows["full"][2] - 10.0

    # Capacity accuracy is monotone in stored bits.
    caps = result.column("capacity acc %")
    assert caps == sorted(caps)
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
