"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they isolate the knobs the paper's results
depend on:

* the §5.3 MCT install-on-bypass rule,
* the swap-cost model behind the victim-cache result,
* the partial-tag width under the real (non-oracle) system,
* next-line vs RPT stride prefetching (§5.2's unshown comparison),
* Tyson-style PC-indexed exclusion vs the MCT capacity filter (§5.3's
  other related-work scheme, modelled here because our traces carry PCs).
"""

from dataclasses import replace

from conftest import BENCH_PARAMS, run_once

from repro.buffers.exclusion import exclusion
from repro.buffers.stride import compare_prefetchers
from repro.buffers.victim import filter_both, no_victim_cache, traditional
from repro.cache.geometry import CacheGeometry
from repro.system.config import MachineConfig, TimingConfig
from repro.system.policies import AssistConfig, ExclusionMode
from repro.system.simulator import simulate, speedup
from repro.workloads.spec_analogs import build

SUITE = ["tomcatv", "gcc", "compress", "turb3d"]
N, W = BENCH_PARAMS.n_refs, BENCH_PARAMS.warmup


def test_mct_install_on_bypass(benchmark):
    """§5.3's tweak: without installing bypassed tags in the MCT, no line
    routed to the bypass buffer can ever be reclassified as a conflict, so
    capacity-exclusion over-bypasses and loses hit rate."""

    def run():
        with_install = exclusion(ExclusionMode.CAPACITY)
        without = replace(with_install, name="no-install",
                          mct_install_on_bypass=False)
        rates = {}
        for cfg in (with_install, without):
            total = 0.0
            for name in SUITE:
                stats = simulate(build(name, N), cfg, warmup=W)
                total += stats.total_hit_rate
            rates[cfg.name] = total / len(SUITE)
        return rates

    rates = run_once(benchmark, run)
    assert rates["capacity"] >= rates["no-install"]
    print(f"\ninstall-on-bypass: {rates}")


def test_swap_cost_drives_victim_filtering(benchmark):
    """Zeroing the swap/fill occupancy model should shrink the advantage
    of the filtered victim policies — the paper attributes their speedup
    to pressure relief, not hit rate."""

    def run():
        normal = MachineConfig()
        free_swaps = MachineConfig(
            timing=replace(TimingConfig(), swap_busy_cycles=0)
        )
        out = {}
        for label, machine in (("normal", normal), ("free swaps", free_swaps)):
            total = 0.0
            for name in SUITE:
                trace = build(name, N)
                filt = simulate(trace, filter_both(), machine, warmup=W)
                trad = simulate(trace, traditional(), machine, warmup=W)
                total += speedup(filt, trad)
            out[label] = total / len(SUITE)
        return out

    out = run_once(benchmark, run)
    # With free swaps the filters' edge over the traditional victim cache
    # must not grow; normally it is at least as large.
    assert out["normal"] >= out["free swaps"] - 0.005
    print(f"\nfilter-vs-traditional: {out}")


def test_partial_tags_in_the_full_system(benchmark):
    """Fig 2 measured partial tags against the oracle; here the 8-bit MCT
    must also preserve the end-to-end AMB benefit."""

    from repro.buffers.amb import vict_pref

    def run():
        full = vict_pref()
        small = replace(full, name="VictPref-8bit", mct_tag_bits=8)
        base = AssistConfig()
        out = {}
        for cfg in (full, small):
            total = 0.0
            for name in SUITE:
                trace = build(name, N)
                total += speedup(
                    simulate(trace, cfg, warmup=W),
                    simulate(trace, base, warmup=W),
                )
            out[cfg.name] = total / len(SUITE)
        return out

    out = run_once(benchmark, run)
    assert out["VictPref-8bit"] > 1.0
    assert abs(out["VictPref-8bit"] - out["VictPref"]) < 0.05
    print(f"\npartial-tag AMB: {out}")


def test_next_line_vs_rpt(benchmark):
    """§5.2: on the irregular applications the next-line prefetcher has
    the coverage advantage; on the regular codes the RPT has the accuracy
    advantage (the trade-off behind the paper's choice of next-line plus
    MCT filtering)."""

    geo = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
    irregular = ["gcc", "li", "go", "vortex"]
    regular = ["tomcatv", "swim"]

    def run():
        out = {}
        for name in irregular + regular:
            out[name] = compare_prefetchers(build(name, N), geo)
        return out

    out = run_once(benchmark, run)
    # Irregular codes: next-line coverage >= RPT coverage (paper's words).
    for name in irregular:
        assert out[name].next_line_coverage >= out[name].rpt_coverage - 0.5, name
    # Regular codes: the RPT's learned strides are far more accurate.
    assert out["tomcatv"].rpt_accuracy > out["tomcatv"].next_line_accuracy * 1.5
    print()
    for name, c in out.items():
        print(f"{name:<9} next-line cov {c.next_line_coverage:5.1f} "
              f"acc {c.next_line_accuracy:5.1f} | "
              f"RPT cov {c.rpt_coverage:5.1f} acc {c.rpt_accuracy:5.1f}")


def test_tyson_vs_mct_exclusion(benchmark):
    """§5.3 argues the MCT (touched only on misses) can match schemes that
    maintain per-access state.  Compare Tyson-style PC exclusion with the
    MCT capacity filter on total hit rate, and compare hardware activity:
    the Tyson table is updated on EVERY access, the MCT only on misses."""

    from repro.buffers.tyson import simulate_tyson
    from repro.system.memory_system import MemorySystem

    geo = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)

    def run():
        mct_total = tyson_total = 0.0
        mct_touches = tyson_touches = 0
        for name in SUITE:
            trace = build(name, N)
            stats = simulate(trace, exclusion(ExclusionMode.CAPACITY))
            mct_total += stats.total_hit_rate
            mct_touches += stats.l1.misses          # MCT: miss-time only
            tyson = simulate_tyson(trace, geo)
            tyson_total += tyson.total_hit_rate
            tyson_touches += len(trace)             # Tyson: every access
        n = len(SUITE)
        return {
            "mct hit rate": mct_total / n,
            "tyson hit rate": tyson_total / n,
            "mct table touches": mct_touches,
            "tyson table touches": tyson_touches,
        }

    out = run_once(benchmark, run)
    # The MCT filter reaches at least Tyson-level hit rates...
    assert out["mct hit rate"] >= out["tyson hit rate"] - 1.0
    # ...while touching its table only on misses, never on hits.  (On this
    # deliberately miss-heavy ablation suite the gap understates the
    # general case; the paper's 4-wide port-pressure argument is about
    # per-cycle access bandwidth, which hit-time updates dominate.)
    assert out["mct table touches"] < out["tyson table touches"]
    print(f"\ntyson vs mct: { {k: round(v, 1) for k, v in out.items()} }")
