"""Shared configuration for the benchmark harness.

Each benchmark regenerates one paper table/figure via
``benchmark.pedantic(..., rounds=1)`` — a simulation result is
deterministic, so repeated rounds would only burn time — and then asserts
the *shape* of the paper's result (who wins, in which direction, by
roughly what factor).  Absolute numbers live in EXPERIMENTS.md.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentParams

#: Benchmark-sized parameters: long enough for warm caches and stable
#: shapes, short enough that the full harness completes in minutes.
BENCH_PARAMS = ExperimentParams(n_refs=60_000, warmup=20_000)

#: Accuracy experiments (Figs 1-2) run cold, like the paper's Section 3.
ACC_PARAMS = ExperimentParams(n_refs=60_000, warmup=0)


@pytest.fixture
def params() -> ExperimentParams:
    return BENCH_PARAMS


@pytest.fixture
def acc_params() -> ExperimentParams:
    return ACC_PARAMS


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
