"""Benchmark: Figure 6 — the Adaptive Miss Buffer.

Paper: the combined policies beat any single policy with the same buffer
("VictPref … more than doubled the overall gain of any single policy";
"as much as a 16% speedup over any single technique"); with 16 entries
the do-everything policy becomes (at least as) attractive.
"""

from conftest import run_once

from repro.buffers.amb import COMBINED_POLICY_NAMES, SINGLE_POLICY_NAMES
from repro.experiments import fig6_amb


def _avg(result):
    row = result.row_dict()["AVERAGE"]
    return {n: float(row[result.headers.index(n)]) for n in result.headers[1:]}


def test_fig6_8_entries(benchmark, params):
    result = run_once(benchmark, fig6_amb.run, params, 8)
    avg = _avg(result)
    best_single = max(avg[n] for n in SINGLE_POLICY_NAMES)
    best_combined = max(avg[n] for n in COMBINED_POLICY_NAMES)
    # Combining optimizations in one buffer beats any single use of it.
    assert best_combined > best_single
    # Every policy is at worst roughly performance-neutral on average.
    assert all(v > 0.97 for v in avg.values()), avg
    # Per-benchmark "as much as" margin: somewhere in the suite a combined
    # policy beats the best single policy by several percent.
    margins = []
    for row in result.rows:
        if row[0] in ("AVERAGE",):
            continue
        vals = {n: float(row[result.headers.index(n)]) for n in avg}
        margins.append(
            max(vals[n] for n in COMBINED_POLICY_NAMES)
            - max(vals[n] for n in SINGLE_POLICY_NAMES)
        )
    assert max(margins) > 0.02
    print()
    from repro.experiments.base import format_result

    print(format_result(result))


def test_fig6_16_entries(benchmark, params):
    result = run_once(benchmark, fig6_amb.run, params, 16)
    avg = _avg(result)
    # With more room, the do-everything policy is competitive with the
    # best combination (paper: "becomes more attractive").
    best_combined = max(avg[n] for n in COMBINED_POLICY_NAMES)
    assert avg["VicPreExc"] > best_combined - 0.02
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
