"""Benchmark: Table 1 — victim-cache hit rates and swap/fill traffic.

Paper rows (suite averages): the no-fill policy cuts fills by more than
half (6.6 -> 2.6), the no-swap policy nearly eliminates swaps
(1.7 -> 0.1), and the combined hit rate stays roughly constant while D$
and V$ hit rates trade places.
"""

from conftest import run_once

from repro.experiments import table1_victim


def test_table1_victim(benchmark, params):
    result = run_once(benchmark, table1_victim.run, params)
    rows = result.row_dict()

    swaps = result.headers.index("swaps")
    fills = result.headers.index("fills")
    total = result.headers.index("Total")

    # Filtering fills cuts fill traffic by more than half.
    assert rows["filter fills"][fills] < rows["V cache"][fills] / 2
    # Filtering swaps (or-conflict) nearly eliminates swaps.
    assert rows["filter swaps"][swaps] < rows["V cache"][swaps] / 10
    # Total hit rate stays within a couple points across victim policies.
    victim_rows = ["V cache", "filter swaps", "filter fills", "filter both"]
    totals = [float(rows[r][total]) for r in victim_rows]
    assert max(totals) - min(totals) < 4.0
    # Any victim cache beats no victim cache on combined hit rate.
    assert min(totals) > float(rows["no V cache"][total])
    print()
    from repro.experiments.base import format_result

    print(format_result(result))
